"""Shared training loop for printed neuromorphic networks.

Implements the paper's training protocol (§IV-A): full-batch gradient
descent with Adam starting at learning rate 0.1, learning-rate halving after
``patience`` epochs without validation improvement, feasibility-aware
checkpointing (the returned model is the best *feasible* validation epoch),
and early stopping.

The loop is objective-agnostic: the augmented Lagrangian method, the penalty
baseline, and plain unconstrained training all plug in through the
``Objective`` protocol, which maps ``(loss, power, epoch)`` to the scalar
being minimized and owns any dual-variable state (λ updates happen in the
objective's ``on_epoch_end``).

Observability: the loop packages every epoch into an
:class:`~repro.observability.callbacks.EpochEvent` and dispatches it to the
registered callbacks in order.  A :class:`TraceRecorder` is always
registered first, so the ``TrainResult`` trace lists are identical to the
pre-callback implementation; extra callbacks (event logging, progress
reporting, anything user-supplied) ride along via ``train_model``'s
``callbacks`` argument.

Trace alignment: the objective's dual update runs *before* the epoch's
traces are recorded, so ``multiplier_trace[i]`` is the **post-update** λ
computed from ``power_trace[i]`` — the multiplier and the power it was
updated from share an index.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from time import perf_counter
from typing import Protocol, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, graph_capture, no_grad
from repro.autograd import functional as F
from repro.autograd import optim
from repro.autograd.graph import (
    CapturedGraph,
    GraphCaptureError,
    mark_recapture,
    mark_replay_epoch,
)
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.datasets.splits import DataSplit
from repro.observability.callbacks import EpochEvent, TraceRecorder, TrainerCallback
from repro.observability.metrics import get_registry
from repro.observability.profiling import span
from repro.observability.tracing import get_kernel_profiler, trace_span

logger = logging.getLogger(__name__)

_EPOCH_TIME = get_registry().histogram(
    "epoch_time_s", "wall time per training epoch (step + evaluations)"
)
_EPOCH_STEP_TIME = get_registry().histogram(
    "epoch_step_time_s", "wall time of the gradient-step portion of each epoch"
)
_EPOCH_EVAL_TIME = get_registry().histogram(
    "epoch_eval_time_s", "wall time of the post-step evaluation portion of each epoch"
)
_POWER_VIOLATION = get_registry().gauge(
    "power_violation", "normalized constraint violation max(0, (P - budget)/budget) of the last epoch"
)
_GRAPH_STEP_OPS = get_registry().gauge(
    "graph_step_ops", "kernels per replayed training step (captured graph)"
)
_GRAPH_EVAL_OPS = get_registry().gauge(
    "graph_eval_ops", "kernels per replayed post-step evaluation forward"
)
_GRAPH_VAL_OPS = get_registry().gauge(
    "graph_val_ops", "kernels per replayed validation forward"
)


class Objective(Protocol):
    """Strategy turning task loss + power into the training scalar.

    Objectives that additionally set ``supports_graph_capture = True`` opt
    into the captured-graph execution engine; they must then keep their
    epoch-to-epoch changes value-only (updating persistent leaf tensors in
    ``prepare_epoch``) and report structural boundaries (e.g. a warmup
    ending) through ``graph_epoch_key``.
    """

    def training_loss(self, loss: Tensor, power: Tensor, epoch: int) -> Tensor:
        """Scalar to minimize this epoch."""
        ...

    def on_epoch_end(self, power_value: float, epoch: int) -> None:
        """Post-step hook (dual updates, penalty schedules...)."""
        ...

    def is_feasible(self, power_value: float) -> bool:
        """Whether a power value satisfies this objective's constraint."""
        ...


@dataclass
class TrainerSettings:
    """Hyperparameters of the shared loop (paper defaults)."""

    epochs: int = 500
    lr: float = 0.1
    patience: int = 100
    lr_factor: float = 0.5
    min_lr: float = 1e-4
    #: record traces every this-many epochs (1 = every epoch)
    trace_every: int = 1
    #: stop once the LR bottomed out and the last epochs brought no change
    early_stop_stale: int = 250
    #: execute epochs by captured-graph replay when the objective supports
    #: it (bit-identical to eager; ``--no-capture`` on the CLI disables)
    capture_graph: bool = True


@dataclass
class TrainResult:
    """Outcome of one training run."""

    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    power: float
    feasible: bool
    device_count: int
    epochs_run: int
    best_epoch: int
    loss_trace: list[float] = field(default_factory=list)
    power_trace: list[float] = field(default_factory=list)
    val_accuracy_trace: list[float] = field(default_factory=list)
    multiplier_trace: list[float] = field(default_factory=list)
    state: dict[str, np.ndarray] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)


def evaluate_model(
    net: PrintedNeuralNetwork, x: np.ndarray, y: np.ndarray
) -> tuple[float, float]:
    """Return ``(accuracy, power_W)`` of the network on ``(x, y)``."""
    with no_grad():
        logits, breakdown = net.forward_with_power(Tensor(x))
    return F.accuracy(logits, y), float(breakdown.total.data)


def _accuracy_only(net: PrintedNeuralNetwork, x: np.ndarray, y: np.ndarray) -> float:
    """Accuracy via the power-free signal path.

    ``forward`` runs the identical op sequence on the signal as
    ``forward_with_power`` (logits are bit-equal) but skips the surrogate
    power assembly — the part :func:`evaluate_model` would compute and the
    accuracy-only callers used to throw away every epoch.
    """
    with no_grad():
        logits = net.forward(Tensor(x))
    return F.accuracy(logits, y)


class _GraphEngine:
    """Capture-and-replay driver for one training run.

    Owns up to three captured programs: the training **step** (forward +
    loss; its backward closures and topo order are cached alongside), the
    post-step **eval** forward (logits + power under ``no_grad``), and the
    **val** forward (only when the validation set is distinct from the
    training set).  Each epoch either replays the recorded kernels into
    their original buffers or — on the first epoch, after a structural
    invalidation, or with capture disabled — runs the ordinary eager path.
    Replay and eager share the same forward kernels and the same backward
    closures/accumulation order, so every produced float is bit-identical;
    if any recorded op lacks a forward thunk the engine permanently falls
    back to eager for the rest of the run.
    """

    def __init__(
        self,
        net: PrintedNeuralNetwork,
        objective: Objective,
        split: DataSplit,
        settings: TrainerSettings,
    ):
        self.net = net
        self.objective = objective
        self.split = split
        self.signal_weight = net.config.signal_health_weight
        self.enabled = settings.capture_graph and bool(
            getattr(objective, "supports_graph_capture", False)
        )
        self.x_train = Tensor(split.x_train)
        self.x_val = None if split.x_val is split.x_train else Tensor(split.x_val)
        self._step: CapturedGraph | None = None
        self._eval: CapturedGraph | None = None
        self._val: CapturedGraph | None = None
        self._step_outputs: tuple[Tensor, Tensor] | None = None
        self._eval_outputs: tuple[Tensor, Tensor] | None = None
        self._val_logits: Tensor | None = None
        # Per-kernel attribution (repro profile --kernels): one pair of
        # KernelRecordings per captured graph, None while tracing is off.
        self._step_rec = None
        self._eval_rec = None
        self._val_rec = None

    # ------------------------------------------------------------------
    def _forward_step(self, epoch: int) -> tuple[Tensor, Tensor]:
        logits, breakdown = self.net.forward_with_power(self.x_train)
        task_loss = F.cross_entropy(logits, self.split.y_train)
        total = self.objective.training_loss(task_loss, breakdown.total, epoch)
        if self.signal_weight > 0.0:
            total = total + self.net.signal_health * self.signal_weight
        return task_loss, total

    def _abandon_capture(self) -> None:
        logger.debug("graph capture unavailable; running eagerly", exc_info=True)
        self.enabled = False
        self._step = self._eval = self._val = None
        self._step_rec = self._eval_rec = self._val_rec = None

    @staticmethod
    def _kernel_recordings(graph: CapturedGraph | None, label: str):
        """Fresh (forward, backward) recordings, or None while tracing is off."""
        profiler = get_kernel_profiler()
        if graph is None or not profiler.enabled:
            return None
        fwd = profiler.recording(f"{label}.forward", graph.kernel_names())
        bwd = None
        if graph.backward_order is not None:
            bwd = profiler.recording(f"{label}.backward", graph.backward_kernel_names())
        return fwd, bwd

    @staticmethod
    def _replay_forward(graph: CapturedGraph, rec) -> None:
        if rec is None:
            graph.replay_forward()
            return
        fwd_rec = rec[0]
        t0 = perf_counter()
        graph.replay_forward(fwd_rec.times)
        fwd_rec.note_replay(perf_counter() - t0)

    def run_step(self, epoch: int) -> tuple[Tensor, Tensor]:
        """One epoch's forward + backward; returns ``(task_loss, total)``.

        The caller is responsible for ``zero_grad`` before and
        ``optimizer.step()`` / ``project_()`` after.
        """
        if not self.enabled:
            task_loss, total = self._forward_step(epoch)
            with span("trainer.backward"):
                total.backward()
            return task_loss, total

        prepare = getattr(self.objective, "prepare_epoch", None)
        if prepare is not None:
            prepare(epoch)
        key = self.objective.graph_epoch_key(epoch)
        if self._step is not None and self._step.is_valid(key):
            with span("trainer.step.replay"):
                rec = self._step_rec
                if rec is None:
                    self._step.replay_forward()
                    self._step.replay_backward()
                else:
                    fwd_rec, bwd_rec = rec
                    t0 = perf_counter()
                    self._step.replay_forward(fwd_rec.times)
                    t1 = perf_counter()
                    self._step.replay_backward(bwd_rec.times)
                    fwd_rec.note_replay(t1 - t0)
                    bwd_rec.note_replay(perf_counter() - t1)
            mark_replay_epoch()
            return self._step_outputs
        if self._step is not None:
            mark_recapture()
        with span("trainer.capture"):
            with graph_capture():
                task_loss, total = self._forward_step(epoch)
            try:
                self._step = CapturedGraph(
                    (task_loss, total), backward_root=total, epoch_key=key
                )
            except GraphCaptureError:
                self._abandon_capture()
        self._step_rec = self._kernel_recordings(self._step, "train.step")
        self._step_outputs = (task_loss, total)
        with span("trainer.backward"):
            if self._step is not None:
                _GRAPH_STEP_OPS.set(self._step.n_ops)
                self._step.replay_backward()
            else:
                total.backward()
        return task_loss, total

    # ------------------------------------------------------------------
    def run_eval(self) -> tuple[Tensor, float]:
        """Post-step training-set forward; returns ``(logits, power_W)``."""
        if self.enabled and self._eval is not None and self._eval.is_valid():
            self._replay_forward(self._eval, self._eval_rec)
            logits, power = self._eval_outputs
            return logits, float(power.data)
        if not self.enabled:
            with no_grad():
                logits, breakdown = self.net.forward_with_power(self.x_train)
            return logits, float(breakdown.total.data)
        if self._eval is not None:
            mark_recapture()
        with no_grad(), graph_capture():
            logits, breakdown = self.net.forward_with_power(self.x_train)
            power = breakdown.total
        try:
            self._eval = CapturedGraph((logits, power))
            _GRAPH_EVAL_OPS.set(self._eval.n_ops)
        except GraphCaptureError:
            self._abandon_capture()
        self._eval_rec = self._kernel_recordings(self._eval, "train.eval")
        self._eval_outputs = (logits, power)
        return logits, float(power.data)

    def val_accuracy(self, post_logits: Tensor) -> float:
        """Validation accuracy, reusing ``post_logits`` when val is train."""
        if self.x_val is None:
            return F.accuracy(post_logits, self.split.y_val)
        if self.enabled and self._val is not None and self._val.is_valid():
            self._replay_forward(self._val, self._val_rec)
            return F.accuracy(self._val_logits, self.split.y_val)
        if not self.enabled:
            return _accuracy_only(self.net, self.split.x_val, self.split.y_val)
        if self._val is not None:
            mark_recapture()
        with no_grad(), graph_capture():
            logits = self.net.forward(self.x_val)
        try:
            self._val = CapturedGraph((logits,))
            _GRAPH_VAL_OPS.set(self._val.n_ops)
        except GraphCaptureError:
            self._abandon_capture()
        self._val_rec = self._kernel_recordings(self._val, "train.val")
        self._val_logits = logits
        return F.accuracy(logits, self.split.y_val)


def train_model(
    net: PrintedNeuralNetwork,
    split: DataSplit,
    objective: Objective,
    settings: TrainerSettings | None = None,
    callbacks: Sequence[TrainerCallback] | None = None,
) -> TrainResult:
    """Run the shared constrained-training loop.

    The best checkpoint is chosen by validation accuracy *among feasible
    epochs* (power within the objective's budget); if no epoch is feasible
    the minimum-power checkpoint is kept instead, so the caller always gets
    the least-violating circuit.

    ``callbacks`` are dispatched per epoch after the built-in trace
    recorder, in the order given; see
    :class:`repro.observability.callbacks.TrainerCallback`.
    """
    settings = settings or TrainerSettings()
    optimizer = optim.Adam(net.parameters(), lr=settings.lr)
    scheduler = optim.ReduceLROnPlateau(
        optimizer,
        patience=settings.patience,
        factor=settings.lr_factor,
        min_lr=settings.min_lr,
        mode="max",
    )

    recorder = TraceRecorder(settings.trace_every)
    all_callbacks: list[TrainerCallback] = [recorder, *(callbacks or [])]
    for callback in all_callbacks:
        callback.on_train_start(net, objective, settings)

    engine = _GraphEngine(net, objective, split, settings)
    budget = getattr(objective, "power_budget", None)

    best_val = -1.0
    best_state: dict[str, np.ndarray] | None = None
    best_epoch = -1
    fallback_power = np.inf
    fallback_state: dict[str, np.ndarray] | None = None
    stale = 0

    epoch = 0
    for epoch in range(settings.epochs):
        with span("trainer.epoch"), trace_span("trainer.epoch", "train"):
            epoch_start = perf_counter()
            optimizer.zero_grad()
            with span("trainer.step"), trace_span("trainer.step", "train"):
                task_loss, _ = engine.run_step(epoch)
                optimizer.step()
                net.project_()
            step_time = perf_counter() - epoch_start

            # Power of the *post-step* parameters — the state a checkpoint
            # would actually save.  (The pre-step forward's power describes
            # the state the optimizer just left.)  Feasibility is judged on
            # the training-distribution power: the budget is defined over the
            # deployment input distribution; val power differs only by
            # sampling.
            with span("trainer.eval"), trace_span("trainer.eval", "train"):
                eval_start = perf_counter()
                post_logits, power_value = engine.run_eval()
                objective.on_epoch_end(power_value, epoch)

                # Validation accuracy through the power-free forward; when
                # the val set aliases the train set the post-step logits are
                # reused outright (same array → same shapes → same logits).
                val_accuracy = engine.val_accuracy(post_logits)
                eval_time = perf_counter() - eval_start

            feasible_now = objective.is_feasible(power_value)
            if budget:
                _POWER_VIOLATION.set(max(0.0, (power_value - budget) / budget))

            is_best = feasible_now and val_accuracy > best_val
            if is_best:
                best_val = val_accuracy
                best_state = net.state_dict()
                best_epoch = epoch
                stale = 0
            else:
                stale += 1
            if power_value < fallback_power:
                fallback_power = power_value
                fallback_state = net.state_dict()

            scheduler.step(val_accuracy if feasible_now else -1.0)

            event = EpochEvent(
                epoch=epoch,
                loss=float(task_loss.data),
                power=power_value,
                val_accuracy=val_accuracy,
                feasible=feasible_now,
                lr=optimizer.lr,
                multiplier=_objective_multiplier(objective),
                is_best=is_best,
                epoch_time_s=perf_counter() - epoch_start,
                epoch_step_time_s=step_time,
                epoch_eval_time_s=eval_time,
            )
            _EPOCH_TIME.observe(event.epoch_time_s)
            _EPOCH_STEP_TIME.observe(step_time)
            _EPOCH_EVAL_TIME.observe(eval_time)
            for callback in all_callbacks:
                callback.on_epoch(event)

        if optimizer.lr <= settings.min_lr and stale >= settings.early_stop_stale:
            logger.debug("early stop at epoch %d (lr bottomed out, %d stale epochs)", epoch, stale)
            break

    if best_state is not None:
        net.load_state_dict(best_state)
        chosen_epoch = best_epoch
    elif fallback_state is not None:
        logger.debug("no feasible epoch; restoring minimum-power state (P=%.4g W)", fallback_power)
        net.load_state_dict(fallback_state)
        chosen_epoch = -1
    else:  # settings.epochs == 0
        chosen_epoch = -1

    with span("trainer.eval"):
        train_accuracy, power = evaluate_model(net, split.x_train, split.y_train)
        val_accuracy = _accuracy_only(net, split.x_val, split.y_val)
        test_accuracy = _accuracy_only(net, split.x_test, split.y_test)

    result = TrainResult(
        train_accuracy=train_accuracy,
        val_accuracy=val_accuracy,
        test_accuracy=test_accuracy,
        power=power,
        feasible=objective.is_feasible(power),
        device_count=net.device_count(),
        epochs_run=epoch + 1,
        best_epoch=chosen_epoch,
        loss_trace=recorder.loss_trace,
        power_trace=recorder.power_trace,
        val_accuracy_trace=recorder.val_accuracy_trace,
        multiplier_trace=recorder.multiplier_trace,
        state=net.state_dict(),
        counts=net.hard_counts(),
    )
    for callback in all_callbacks:
        callback.on_train_end(result)
    return result


def _objective_multiplier(objective: Objective) -> float | None:
    multiplier = getattr(objective, "multiplier", None)
    return None if multiplier is None else float(multiplier)
