"""Shared training loop for printed neuromorphic networks.

Implements the paper's training protocol (§IV-A): full-batch gradient
descent with Adam starting at learning rate 0.1, learning-rate halving after
``patience`` epochs without validation improvement, feasibility-aware
checkpointing (the returned model is the best *feasible* validation epoch),
and early stopping.

The loop is objective-agnostic: the augmented Lagrangian method, the penalty
baseline, and plain unconstrained training all plug in through the
``Objective`` protocol, which maps ``(loss, power, epoch)`` to the scalar
being minimized and owns any dual-variable state (λ updates happen in the
objective's ``on_epoch_end``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional as F
from repro.autograd import optim
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.datasets.splits import DataSplit


class Objective(Protocol):
    """Strategy turning task loss + power into the training scalar."""

    def training_loss(self, loss: Tensor, power: Tensor, epoch: int) -> Tensor:
        """Scalar to minimize this epoch."""
        ...

    def on_epoch_end(self, power_value: float, epoch: int) -> None:
        """Post-step hook (dual updates, penalty schedules...)."""
        ...

    def is_feasible(self, power_value: float) -> bool:
        """Whether a power value satisfies this objective's constraint."""
        ...


@dataclass
class TrainerSettings:
    """Hyperparameters of the shared loop (paper defaults)."""

    epochs: int = 500
    lr: float = 0.1
    patience: int = 100
    lr_factor: float = 0.5
    min_lr: float = 1e-4
    #: record traces every this-many epochs (1 = every epoch)
    trace_every: int = 1
    #: stop once the LR bottomed out and the last epochs brought no change
    early_stop_stale: int = 250


@dataclass
class TrainResult:
    """Outcome of one training run."""

    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    power: float
    feasible: bool
    device_count: int
    epochs_run: int
    best_epoch: int
    loss_trace: list[float] = field(default_factory=list)
    power_trace: list[float] = field(default_factory=list)
    val_accuracy_trace: list[float] = field(default_factory=list)
    multiplier_trace: list[float] = field(default_factory=list)
    state: dict[str, np.ndarray] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)


def evaluate_model(
    net: PrintedNeuralNetwork, x: np.ndarray, y: np.ndarray
) -> tuple[float, float]:
    """Return ``(accuracy, power_W)`` of the network on ``(x, y)``."""
    with no_grad():
        logits, breakdown = net.forward_with_power(Tensor(x))
    return F.accuracy(logits, y), float(breakdown.total.data)


def train_model(
    net: PrintedNeuralNetwork,
    split: DataSplit,
    objective: Objective,
    settings: TrainerSettings | None = None,
) -> TrainResult:
    """Run the shared constrained-training loop.

    The best checkpoint is chosen by validation accuracy *among feasible
    epochs* (power within the objective's budget); if no epoch is feasible
    the minimum-power checkpoint is kept instead, so the caller always gets
    the least-violating circuit.
    """
    settings = settings or TrainerSettings()
    optimizer = optim.Adam(net.parameters(), lr=settings.lr)
    scheduler = optim.ReduceLROnPlateau(
        optimizer,
        patience=settings.patience,
        factor=settings.lr_factor,
        min_lr=settings.min_lr,
        mode="max",
    )

    x_train = Tensor(split.x_train)
    y_train = split.y_train

    best_val = -1.0
    best_state: dict[str, np.ndarray] | None = None
    best_epoch = -1
    fallback_power = np.inf
    fallback_state: dict[str, np.ndarray] | None = None
    stale = 0

    loss_trace: list[float] = []
    power_trace: list[float] = []
    val_trace: list[float] = []
    multiplier_trace: list[float] = []

    epoch = 0
    for epoch in range(settings.epochs):
        optimizer.zero_grad()
        logits, breakdown = net.forward_with_power(x_train)
        task_loss = F.cross_entropy(logits, y_train)
        total = objective.training_loss(task_loss, breakdown.total, epoch)
        if net.config.signal_health_weight > 0.0:
            total = total + net.signal_health * net.config.signal_health_weight
        total.backward()
        optimizer.step()
        net.project_()

        # Power of the *post-step* parameters — the state a checkpoint would
        # actually save.  (The pre-step forward's power describes the state
        # the optimizer just left.)  Feasibility is judged on the
        # training-distribution power: the budget is defined over the
        # deployment input distribution; val power differs only by sampling.
        _, power_value = evaluate_model(net, split.x_train, split.y_train)
        objective.on_epoch_end(power_value, epoch)

        val_accuracy, _ = evaluate_model(net, split.x_val, split.y_val)
        feasible_now = objective.is_feasible(power_value)

        if epoch % settings.trace_every == 0:
            loss_trace.append(float(task_loss.data))
            power_trace.append(power_value)
            val_trace.append(val_accuracy)
            multiplier = getattr(objective, "multiplier", None)
            if multiplier is not None:
                multiplier_trace.append(float(multiplier))

        if feasible_now and val_accuracy > best_val:
            best_val = val_accuracy
            best_state = net.state_dict()
            best_epoch = epoch
            stale = 0
        else:
            stale += 1
        if power_value < fallback_power:
            fallback_power = power_value
            fallback_state = net.state_dict()

        scheduler.step(val_accuracy if feasible_now else -1.0)
        if optimizer.lr <= settings.min_lr and stale >= settings.early_stop_stale:
            break

    if best_state is not None:
        net.load_state_dict(best_state)
        chosen_epoch = best_epoch
    elif fallback_state is not None:
        net.load_state_dict(fallback_state)
        chosen_epoch = -1
    else:  # settings.epochs == 0
        chosen_epoch = -1

    train_accuracy, power = evaluate_model(net, split.x_train, split.y_train)
    val_accuracy, _ = evaluate_model(net, split.x_val, split.y_val)
    test_accuracy, _ = evaluate_model(net, split.x_test, split.y_test)

    return TrainResult(
        train_accuracy=train_accuracy,
        val_accuracy=val_accuracy,
        test_accuracy=test_accuracy,
        power=power,
        feasible=objective.is_feasible(power),
        device_count=net.device_count(),
        epochs_run=epoch + 1,
        best_epoch=chosen_epoch,
        loss_trace=loss_trace,
        power_trace=power_trace,
        val_accuracy_trace=val_trace,
        multiplier_trace=multiplier_trace,
        state=net.state_dict(),
        counts=net.hard_counts(),
    )
