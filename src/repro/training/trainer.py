"""Shared training loop for printed neuromorphic networks.

Implements the paper's training protocol (§IV-A): full-batch gradient
descent with Adam starting at learning rate 0.1, learning-rate halving after
``patience`` epochs without validation improvement, feasibility-aware
checkpointing (the returned model is the best *feasible* validation epoch),
and early stopping.

The loop is objective-agnostic: the augmented Lagrangian method, the penalty
baseline, and plain unconstrained training all plug in through the
``Objective`` protocol, which maps ``(loss, power, epoch)`` to the scalar
being minimized and owns any dual-variable state (λ updates happen in the
objective's ``on_epoch_end``).

Observability: the loop packages every epoch into an
:class:`~repro.observability.callbacks.EpochEvent` and dispatches it to the
registered callbacks in order.  A :class:`TraceRecorder` is always
registered first, so the ``TrainResult`` trace lists are identical to the
pre-callback implementation; extra callbacks (event logging, progress
reporting, anything user-supplied) ride along via ``train_model``'s
``callbacks`` argument.

Trace alignment: the objective's dual update runs *before* the epoch's
traces are recorded, so ``multiplier_trace[i]`` is the **post-update** λ
computed from ``power_trace[i]`` — the multiplier and the power it was
updated from share an index.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from time import perf_counter
from typing import Protocol, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional as F
from repro.autograd import optim
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.datasets.splits import DataSplit
from repro.observability.callbacks import EpochEvent, TraceRecorder, TrainerCallback
from repro.observability.metrics import get_registry
from repro.observability.profiling import span

logger = logging.getLogger(__name__)

_EPOCH_TIME = get_registry().histogram(
    "epoch_time_s", "wall time per training epoch (step + evaluations)"
)
_POWER_VIOLATION = get_registry().gauge(
    "power_violation", "normalized constraint violation max(0, (P - budget)/budget) of the last epoch"
)


class Objective(Protocol):
    """Strategy turning task loss + power into the training scalar."""

    def training_loss(self, loss: Tensor, power: Tensor, epoch: int) -> Tensor:
        """Scalar to minimize this epoch."""
        ...

    def on_epoch_end(self, power_value: float, epoch: int) -> None:
        """Post-step hook (dual updates, penalty schedules...)."""
        ...

    def is_feasible(self, power_value: float) -> bool:
        """Whether a power value satisfies this objective's constraint."""
        ...


@dataclass
class TrainerSettings:
    """Hyperparameters of the shared loop (paper defaults)."""

    epochs: int = 500
    lr: float = 0.1
    patience: int = 100
    lr_factor: float = 0.5
    min_lr: float = 1e-4
    #: record traces every this-many epochs (1 = every epoch)
    trace_every: int = 1
    #: stop once the LR bottomed out and the last epochs brought no change
    early_stop_stale: int = 250


@dataclass
class TrainResult:
    """Outcome of one training run."""

    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    power: float
    feasible: bool
    device_count: int
    epochs_run: int
    best_epoch: int
    loss_trace: list[float] = field(default_factory=list)
    power_trace: list[float] = field(default_factory=list)
    val_accuracy_trace: list[float] = field(default_factory=list)
    multiplier_trace: list[float] = field(default_factory=list)
    state: dict[str, np.ndarray] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)


def evaluate_model(
    net: PrintedNeuralNetwork, x: np.ndarray, y: np.ndarray
) -> tuple[float, float]:
    """Return ``(accuracy, power_W)`` of the network on ``(x, y)``."""
    with no_grad():
        logits, breakdown = net.forward_with_power(Tensor(x))
    return F.accuracy(logits, y), float(breakdown.total.data)


def _accuracy_only(net: PrintedNeuralNetwork, x: np.ndarray, y: np.ndarray) -> float:
    """Accuracy via the power-free signal path.

    ``forward`` runs the identical op sequence on the signal as
    ``forward_with_power`` (logits are bit-equal) but skips the surrogate
    power assembly — the part :func:`evaluate_model` would compute and the
    accuracy-only callers used to throw away every epoch.
    """
    with no_grad():
        logits = net.forward(Tensor(x))
    return F.accuracy(logits, y)


def train_model(
    net: PrintedNeuralNetwork,
    split: DataSplit,
    objective: Objective,
    settings: TrainerSettings | None = None,
    callbacks: Sequence[TrainerCallback] | None = None,
) -> TrainResult:
    """Run the shared constrained-training loop.

    The best checkpoint is chosen by validation accuracy *among feasible
    epochs* (power within the objective's budget); if no epoch is feasible
    the minimum-power checkpoint is kept instead, so the caller always gets
    the least-violating circuit.

    ``callbacks`` are dispatched per epoch after the built-in trace
    recorder, in the order given; see
    :class:`repro.observability.callbacks.TrainerCallback`.
    """
    settings = settings or TrainerSettings()
    optimizer = optim.Adam(net.parameters(), lr=settings.lr)
    scheduler = optim.ReduceLROnPlateau(
        optimizer,
        patience=settings.patience,
        factor=settings.lr_factor,
        min_lr=settings.min_lr,
        mode="max",
    )

    recorder = TraceRecorder(settings.trace_every)
    all_callbacks: list[TrainerCallback] = [recorder, *(callbacks or [])]
    for callback in all_callbacks:
        callback.on_train_start(net, objective, settings)

    x_train = Tensor(split.x_train)
    y_train = split.y_train
    budget = getattr(objective, "power_budget", None)

    best_val = -1.0
    best_state: dict[str, np.ndarray] | None = None
    best_epoch = -1
    fallback_power = np.inf
    fallback_state: dict[str, np.ndarray] | None = None
    stale = 0

    epoch = 0
    for epoch in range(settings.epochs):
        with span("trainer.epoch"):
            epoch_start = perf_counter()
            optimizer.zero_grad()
            logits, breakdown = net.forward_with_power(x_train)
            task_loss = F.cross_entropy(logits, y_train)
            total = objective.training_loss(task_loss, breakdown.total, epoch)
            if net.config.signal_health_weight > 0.0:
                total = total + net.signal_health * net.config.signal_health_weight
            with span("trainer.backward"):
                total.backward()
            optimizer.step()
            net.project_()

            # Power of the *post-step* parameters — the state a checkpoint
            # would actually save.  (The pre-step forward's power describes
            # the state the optimizer just left.)  Feasibility is judged on
            # the training-distribution power: the budget is defined over the
            # deployment input distribution; val power differs only by
            # sampling.
            with span("trainer.eval"):
                with no_grad():
                    post_logits, post_breakdown = net.forward_with_power(x_train)
                power_value = float(post_breakdown.total.data)
                objective.on_epoch_end(power_value, epoch)

                # Validation accuracy through the power-free forward; when
                # the val set aliases the train set the post-step logits are
                # reused outright (same array → same shapes → same logits).
                if split.x_val is split.x_train:
                    val_accuracy = F.accuracy(post_logits, split.y_val)
                else:
                    val_accuracy = _accuracy_only(net, split.x_val, split.y_val)

            feasible_now = objective.is_feasible(power_value)
            if budget:
                _POWER_VIOLATION.set(max(0.0, (power_value - budget) / budget))

            is_best = feasible_now and val_accuracy > best_val
            if is_best:
                best_val = val_accuracy
                best_state = net.state_dict()
                best_epoch = epoch
                stale = 0
            else:
                stale += 1
            if power_value < fallback_power:
                fallback_power = power_value
                fallback_state = net.state_dict()

            scheduler.step(val_accuracy if feasible_now else -1.0)

            event = EpochEvent(
                epoch=epoch,
                loss=float(task_loss.data),
                power=power_value,
                val_accuracy=val_accuracy,
                feasible=feasible_now,
                lr=optimizer.lr,
                multiplier=_objective_multiplier(objective),
                is_best=is_best,
                epoch_time_s=perf_counter() - epoch_start,
            )
            _EPOCH_TIME.observe(event.epoch_time_s)
            for callback in all_callbacks:
                callback.on_epoch(event)

        if optimizer.lr <= settings.min_lr and stale >= settings.early_stop_stale:
            logger.debug("early stop at epoch %d (lr bottomed out, %d stale epochs)", epoch, stale)
            break

    if best_state is not None:
        net.load_state_dict(best_state)
        chosen_epoch = best_epoch
    elif fallback_state is not None:
        logger.debug("no feasible epoch; restoring minimum-power state (P=%.4g W)", fallback_power)
        net.load_state_dict(fallback_state)
        chosen_epoch = -1
    else:  # settings.epochs == 0
        chosen_epoch = -1

    with span("trainer.eval"):
        train_accuracy, power = evaluate_model(net, split.x_train, split.y_train)
        val_accuracy = _accuracy_only(net, split.x_val, split.y_val)
        test_accuracy = _accuracy_only(net, split.x_test, split.y_test)

    result = TrainResult(
        train_accuracy=train_accuracy,
        val_accuracy=val_accuracy,
        test_accuracy=test_accuracy,
        power=power,
        feasible=objective.is_feasible(power),
        device_count=net.device_count(),
        epochs_run=epoch + 1,
        best_epoch=chosen_epoch,
        loss_trace=recorder.loss_trace,
        power_trace=recorder.power_trace,
        val_accuracy_trace=recorder.val_accuracy_trace,
        multiplier_trace=recorder.multiplier_trace,
        state=net.state_dict(),
        counts=net.hard_counts(),
    )
    for callback in all_callbacks:
        callback.on_train_end(result)
    return result


def _objective_multiplier(objective: Objective) -> float | None:
    multiplier = getattr(objective, "multiplier", None)
    return None if multiplier is None else float(multiplier)
