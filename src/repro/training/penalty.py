"""Penalty-based baseline training (Zhao et al. [13]).

The baseline minimizes the soft-constrained objective

.. math::

    \\mathcal{L}(D, θ, q) + α · P(θ, q) / P_{ref}

for a fixed scaling factor α ∈ [0, 1].  Power is normalized by a reference
power so α is dimensionless and comparable across datasets (the paper's
Table I reports α ∈ {0.25, 0.5, 0.75, 1}).  One run yields one point in the
power/accuracy plane; tracing the Pareto front requires a sweep over α and
seeds — the paper uses 50 α values × 10 seeds (up to 500 runs) per dataset,
which is precisely the cost the augmented Lagrangian method eliminates.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.datasets.splits import DataSplit
from repro.observability.callbacks import TrainerCallback
from repro.training.trainer import TrainResult, TrainerSettings, train_model

logger = logging.getLogger(__name__)


@dataclass
class PenaltyObjective:
    """Soft-penalty objective ``L + α·P/P_ref`` (no hard constraint)."""

    alpha: float
    reference_power: float = 1.0e-3

    #: The objective is structurally constant across epochs (one fixed
    #: penalty scale), so captured-graph replay is always valid.
    supports_graph_capture = True

    def graph_epoch_key(self, epoch: int) -> int:
        return 0

    def __post_init__(self):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.reference_power <= 0:
            raise ValueError("reference power must be positive")

    def training_loss(self, loss: Tensor, power: Tensor, epoch: int) -> Tensor:
        if self.alpha == 0.0:
            return loss
        return loss + power * (self.alpha / self.reference_power)

    def on_epoch_end(self, power_value: float, epoch: int) -> None:
        return None

    def is_feasible(self, power_value: float) -> bool:
        # Soft constraint: every power level is "feasible"; checkpointing
        # then reduces to best-validation-accuracy.
        return True


def train_penalty(
    net: PrintedNeuralNetwork,
    split: DataSplit,
    alpha: float,
    reference_power: float = 1.0e-3,
    settings: TrainerSettings | None = None,
    callbacks: Sequence[TrainerCallback] | None = None,
) -> TrainResult:
    """One penalty-based run at scaling factor ``alpha``."""
    objective = PenaltyObjective(alpha=alpha, reference_power=reference_power)
    return train_model(net, split, objective, settings=settings, callbacks=callbacks)


def train_unconstrained(
    net: PrintedNeuralNetwork,
    split: DataSplit,
    settings: TrainerSettings | None = None,
    callbacks: Sequence[TrainerCallback] | None = None,
) -> TrainResult:
    """Accuracy-only training (α = 0).

    Used to establish the maximum (unconstrained) power from which the
    paper's 20/40/60/80 % budgets are derived.
    """
    return train_penalty(net, split, alpha=0.0, settings=settings, callbacks=callbacks)


@dataclass
class ParetoSweepResult:
    """All penalty runs of a sweep plus convenience accessors."""

    alphas: list[float]
    seeds: list[int]
    results: list[TrainResult] = field(default_factory=list)
    #: structured records of runs that failed (parallel sweeps only; a
    #: crashed (α, seed) point is isolated instead of killing the sweep)
    errors: list = field(default_factory=list)

    def points(self) -> np.ndarray:
        """``(n, 2)`` array of (test_accuracy, power_W) per run."""
        return np.array([[r.test_accuracy, r.power] for r in self.results])

    @property
    def n_runs(self) -> int:
        return len(self.results)


def penalty_pareto_sweep(
    make_net: Callable[[int], PrintedNeuralNetwork],
    split: DataSplit,
    n_alphas: int = 50,
    n_seeds: int = 10,
    alpha_range: tuple[float, float] = (0.0, 1.0),
    reference_power: float = 1.0e-3,
    settings: TrainerSettings | None = None,
    n_jobs: int = 1,
    net_spec=None,
    progress=None,
    on_error: str = "continue",
    vectorized: bool = False,
    instance_chunk: int = 64,
) -> ParetoSweepResult:
    """The baseline's multi-run sweep: ``n_alphas × n_seeds`` trainings.

    ``make_net`` receives a seed and returns a freshly initialized network,
    mirroring the paper's "10 different seeds" protocol.  Paper scale is
    50 × 10 = 500 runs; callers shrink both for tractable benchmarks.

    Sharding the sweep over processes needs a picklable substitute for the
    ``make_net`` closure: pass a :class:`repro.parallel.NetworkSpec` as
    ``net_spec`` (whose ``build``/``split`` must describe the same network
    and split).  With ``net_spec`` set, every (α, seed) point runs as a
    mapped task — the ``n_jobs=1`` case included, so serial and parallel
    sweeps execute identical code paths.  A failed point lands in
    ``result.errors`` instead of aborting the sweep.  ``progress`` and
    ``on_error`` are forwarded to :func:`repro.parallel.map_tasks` —
    ``on_error="cancel"`` fail-fasts the sweep, recording the skipped
    points as ``TaskError(kind="cancelled")`` entries in ``errors``.

    ``vectorized=True`` trains the sweep as instance-stacked fleets
    (:func:`repro.training.fleet.train_fleet`): the (α, seed) points are
    grouped by fleet structure key (``α == 0`` points separately from
    ``α > 0``), chunked to at most ``instance_chunk`` instances, and each
    chunk runs as one :class:`repro.parallel.FleetSweepChunkTask` — shardable
    across the pool like any other task.  Per-point results are bit-identical
    to the serial per-run path and land in ``results`` in the same order; a
    failed chunk records one error entry for the whole chunk.  Requires
    ``net_spec``.
    """
    alphas = list(np.linspace(alpha_range[0], alpha_range[1], n_alphas))
    seeds = list(range(n_seeds))
    sweep = ParetoSweepResult(alphas=alphas, seeds=seeds)
    logger.info("penalty Pareto sweep: %d α values × %d seeds = %d runs", n_alphas, n_seeds, n_alphas * n_seeds)

    if vectorized:
        if net_spec is None:
            raise ValueError("vectorized sweeps require net_spec")
        if instance_chunk < 1:
            raise ValueError("instance_chunk must be >= 1")
        from repro.parallel import FleetSweepChunkTask, map_tasks
        from repro.training.fleet import fleet_structure_key

        points = [
            (index, float(alpha), seed)
            for index, (alpha, seed) in enumerate(
                (alpha, seed) for alpha in alphas for seed in seeds
            )
        ]
        # Group by structure key preserving sweep order within each group,
        # then chunk; every chunk's fleet shares one captured program shape.
        groups: dict = {}
        for index, alpha, seed in points:
            key = fleet_structure_key(
                PenaltyObjective(alpha=alpha, reference_power=reference_power)
            )
            groups.setdefault(key, []).append((index, alpha, seed))
        tasks = []
        for group in groups.values():
            for offset in range(0, len(group), instance_chunk):
                chunk = group[offset : offset + instance_chunk]
                tasks.append(
                    FleetSweepChunkTask(
                        spec=net_spec,
                        pairs=tuple((alpha, seed) for _i, alpha, seed in chunk),
                        indices=tuple(i for i, _alpha, _seed in chunk),
                        reference_power=reference_power,
                        settings=settings,
                        instances=min(instance_chunk, len(group)),
                        chunk_index=len(tasks),
                    )
                )
        placed: list = [None] * len(points)
        for task, outcome in zip(
            tasks, map_tasks(tasks, n_jobs=n_jobs, progress=progress, on_error=on_error)
        ):
            if outcome.ok:
                for index, result in zip(task.indices, outcome.value):
                    placed[index] = result
            else:
                sweep.errors.append(outcome.error)
        sweep.results.extend(result for result in placed if result is not None)
        return sweep

    if net_spec is not None:
        from repro.parallel import PenaltyTask, map_tasks

        tasks = [
            PenaltyTask(
                spec=net_spec,
                alpha=float(alpha),
                seed=seed,
                reference_power=reference_power,
                settings=settings,
            )
            for alpha in alphas
            for seed in seeds
        ]
        for outcome in map_tasks(tasks, n_jobs=n_jobs, progress=progress, on_error=on_error):
            if outcome.ok:
                sweep.results.append(outcome.value)
            else:
                sweep.errors.append(outcome.error)
        return sweep

    if n_jobs != 1:
        raise ValueError("n_jobs > 1 requires net_spec (make_net closures cannot be pickled)")
    for alpha in alphas:
        for seed in seeds:
            logger.debug("penalty run α=%.4f seed=%d", alpha, seed)
            net = make_net(seed)
            result = train_penalty(
                net, split, alpha=float(alpha), reference_power=reference_power, settings=settings
            )
            sweep.results.append(result)
    return sweep
