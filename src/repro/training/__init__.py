"""Power-constrained training (the paper's core contribution, §III-C).

- :mod:`repro.training.trainer` — the shared full-batch Adam training loop
  with plateau LR halving, feasible-checkpoint tracking and early stopping,
- :mod:`repro.training.augmented_lagrangian` — the proposed method: smoothed
  augmented Lagrangian with analytic inner maximization and multiplier
  updates (Eqs. 3–4),
- :mod:`repro.training.penalty` — the penalty-based baseline ``L + α·P``
  of [13], including the multi-run Pareto sweep,
- :mod:`repro.training.fleet` — vectorized fleet training: one captured
  forward/backward/Adam schedule steps a whole stack of (network,
  objective) instances per epoch, bit-identical per instance to
  ``train_model``,
- :mod:`repro.training.finetune` — the paper's post-training fine-tuning:
  prune masks m^C / m^N, then constrained retraining,
- :mod:`repro.training.pareto` — Pareto dominance and front extraction,
- :mod:`repro.training.tuning` — μ selection by validation search (the
  paper uses RayTune; we run the identical search deterministically).
"""

from repro.training.trainer import TrainResult, TrainerSettings, train_model, evaluate_model
from repro.training.augmented_lagrangian import (
    AugmentedLagrangianObjective,
    train_power_constrained,
    augmented_lagrangian_term,
)
from repro.training.fleet import FleetProgram, fleet_structure_key, train_fleet
from repro.training.penalty import PenaltyObjective, train_penalty, penalty_pareto_sweep, train_unconstrained
from repro.training.pareto import pareto_front, dominates, hypervolume_2d
from repro.training.finetune import generate_masks, finetune
from repro.training.multi_constraint import PowerAreaObjective, train_power_area_constrained
from repro.training.tuning import tune_mu

__all__ = [
    "TrainResult",
    "TrainerSettings",
    "train_model",
    "evaluate_model",
    "AugmentedLagrangianObjective",
    "train_power_constrained",
    "augmented_lagrangian_term",
    "FleetProgram",
    "fleet_structure_key",
    "train_fleet",
    "PenaltyObjective",
    "train_penalty",
    "penalty_pareto_sweep",
    "train_unconstrained",
    "pareto_front",
    "dominates",
    "hypervolume_2d",
    "generate_masks",
    "finetune",
    "tune_mu",
    "PowerAreaObjective",
    "train_power_area_constrained",
]
