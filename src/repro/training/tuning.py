"""Hyperparameter selection for μ (paper: RayTune; here: deterministic search).

The augmented Lagrangian's μ controls how aggressively the constraint is
enforced: too small and convergence to feasibility is slow; too large and
the inner problem becomes as ill-conditioned as a plain penalty.  The paper
selects μ with RayTune; an offline environment gets the same effect from a
deterministic search over a log-spaced grid, scored by feasible validation
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuits.pnc import PrintedNeuralNetwork
from repro.datasets.splits import DataSplit
from repro.training.trainer import TrainerSettings, TrainResult
from repro.training.augmented_lagrangian import train_power_constrained


@dataclass
class MuTuningResult:
    """Outcome of the μ search."""

    best_mu: float
    best_score: float
    trials: list[tuple[float, float, bool]]  # (mu, val_accuracy, feasible)
    results: list[TrainResult]


def tune_mu(
    make_net: Callable[[], PrintedNeuralNetwork],
    split: DataSplit,
    power_budget: float,
    mu_grid: list[float] | None = None,
    settings: TrainerSettings | None = None,
) -> MuTuningResult:
    """Grid-search μ; score = validation accuracy of feasible runs.

    Infeasible runs score ``-1 - relative_violation`` so that, if nothing is
    feasible, the least-violating μ still wins.
    """
    mu_grid = mu_grid or [0.5, 1.0, 2.0, 5.0, 10.0]
    settings = settings or TrainerSettings(epochs=150, patience=50)
    trials: list[tuple[float, float, bool]] = []
    results: list[TrainResult] = []
    best_mu, best_score = mu_grid[0], -np.inf
    for mu in mu_grid:
        net = make_net()
        result = train_power_constrained(net, split, power_budget, mu=mu, settings=settings)
        if result.feasible:
            score = result.val_accuracy
        else:
            score = -1.0 - max(0.0, (result.power - power_budget) / power_budget)
        trials.append((mu, result.val_accuracy, result.feasible))
        results.append(result)
        if score > best_score:
            best_score, best_mu = score, mu
    return MuTuningResult(best_mu=best_mu, best_score=best_score, trials=trials, results=results)
