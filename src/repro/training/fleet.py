"""Vectorized fleet training: one captured graph trains N instances.

The seed/variation sweeps behind the paper's aggregate tables train many
*independent* printed networks — same topology and split, different seeds
(and, for penalty sweeps, different α).  The serial loop pays N full Python
training runs for that.  :class:`FleetProgram` stacks the whole fleet into
one tensor program with a leading instance axis:

- every crossbar θ becomes an ``(instances, M+2, N)`` :class:`Parameter`
  stack, every activation u an ``(instances, 1, 1)`` stack,
- the AL dual state rides along as ``(instances, 1, 1)`` *leaf* tensors
  (λ, μ/2, budget, 1/budget, inactive value), refreshed in place per epoch
  so per-instance multiplier updates ``λᵢ ← max(0, λᵢ + μᵢ·cᵢ)`` never
  invalidate the captured program,
- the loss is a per-instance ``(instances, 1, 1)`` stack seeded with ones —
  no cross-instance reduction exists anywhere in the program, so instance
  ``i``'s gradients are exactly the serial run's.

One recorded forward+backward schedule then steps the whole fleet per
replay, with per-instance Adam learning rates carried through stacked
``lr_scale`` arrays (see :meth:`repro.autograd.optim.Adam.refresh_lr_scales`)
and per-instance plateau schedulers/early stopping handled in plain Python
around the replay.

Bit-identity contract (same bar as the Monte-Carlo ensemble): every
per-instance loss/power/val-accuracy trace and every final
:class:`~repro.training.trainer.TrainResult` equals the serial
:func:`~repro.training.trainer.train_model` run bit for bit, for both the
augmented-Lagrangian and penalty objectives.  Chunks shorter than the
program width are padded with replicas of instance 0 (plus cloned
objectives); padded slots get full symmetric bookkeeping but their results
are discarded, and no real slot can read a pad slot's values (asserted by
the property-based tests).
"""

from __future__ import annotations

import logging
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd import optim
from repro.autograd.graph import (
    CapturedGraph,
    GraphCaptureError,
    mark_recapture,
    mark_replay_epoch,
)
from repro.autograd.nn import Parameter
from repro.autograd.tensor import Tensor, constant_of, graph_capture, no_grad
from repro.circuits.activations import q_tensor_from_u
from repro.circuits.crossbar import _EPS_G
from repro.circuits.ensemble import (
    stacked_broadcast,
    stacked_extend_inputs,
    stacked_power_inputs,
    stacked_subsample_rows,
)
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.datasets.splits import DataSplit
from repro.observability.callbacks import EpochEvent, TraceRecorder
from repro.observability.metrics import get_registry
from repro.power.counts import (
    soft_column_activity,
    soft_row_negativity,
    straight_through_column_activity,
    straight_through_row_negativity,
)
from repro.power.crossbar_power import crossbar_power_matrix_signed
from repro.training.augmented_lagrangian import AugmentedLagrangianObjective
from repro.training.penalty import PenaltyObjective
from repro.training.trainer import (
    _POWER_VIOLATION,
    TrainResult,
    TrainerSettings,
    _accuracy_only,
    _objective_multiplier,
    evaluate_model,
)

logger = logging.getLogger(__name__)

_FLEET_INSTANCES = get_registry().counter(
    "fleet_instances_total", "real (non-pad) instances trained through fleet programs"
)
_FLEET_STEP_SECONDS = get_registry().histogram(
    "fleet_step_seconds", "wall time of one fleet epoch step (all instances)"
)


def fleet_structure_key(objective) -> tuple:
    """Program-structure key: instances sharing a key can share one graph.

    The AL program's shape depends only on the warmup boundary (all other
    schedule state lives in value-refreshed leaves); the penalty program's
    only structural switch is ``α == 0`` (the power path drops out of the
    loss entirely).
    """
    if isinstance(objective, AugmentedLagrangianObjective):
        return ("al", objective.warmup_epochs)
    if isinstance(objective, PenaltyObjective):
        return ("penalty", objective.alpha == 0.0)
    raise TypeError(
        f"fleet training supports AL and penalty objectives, got {type(objective).__name__}"
    )


def _clone_objective(objective):
    """Fresh objective with identical hyperparameters (for pad slots)."""
    if isinstance(objective, AugmentedLagrangianObjective):
        clone = AugmentedLagrangianObjective(
            power_budget=objective.power_budget,
            mu=objective.mu,
            multiplier_every=objective.multiplier_every,
            mu_growth=objective.mu_growth,
            warmup_epochs=objective.warmup_epochs,
            anneal_epochs=objective.anneal_epochs,
            anneal_start_factor=objective.anneal_start_factor,
            feasibility_rtol=objective.feasibility_rtol,
            multiplier=objective.multiplier,
        )
        clone.mu = objective.mu
        return clone
    return PenaltyObjective(
        alpha=objective.alpha, reference_power=objective.reference_power
    )


def _same_surrogate(a, b) -> bool:
    """Whether two fitted surrogates compute the same function.

    ``NetworkSpec.build`` reloads surrogates from the cache per call, so
    fleet members may hold distinct objects with identical weights; identity
    is accepted fast, equal weights + normalization otherwise.
    """
    if a is b:
        return True
    if a is None or b is None:
        return False
    pa = [p.data for p in a.network.parameters()]
    pb = [p.data for p in b.network.parameters()]
    if len(pa) != len(pb):
        return False
    if not all(x.shape == y.shape and np.array_equal(x, y) for x, y in zip(pa, pb)):
        return False
    na, nb = a.normalization, b.normalization
    return (
        np.array_equal(np.asarray(na.log_mask), np.asarray(nb.log_mask))
        and np.array_equal(na.mean, nb.mean)
        and np.array_equal(na.std, nb.std)
    )


class _InstanceLr:
    """Per-instance ``.lr`` view for :class:`~repro.autograd.optim.ReduceLROnPlateau`.

    The plateau scheduler only reads and writes ``optimizer.lr``; pointing
    it at one instance's slot keeps its float arithmetic (``max(lr·factor,
    min_lr)``) identical to the serial per-run scheduler.
    """

    def __init__(self, program: "FleetProgram", index: int):
        self._program = program
        self._index = index

    @property
    def lr(self) -> float:
        return float(self._program._lrs[self._index])

    @lr.setter
    def lr(self, value: float) -> None:
        self._program.set_instance_lr(self._index, float(value))


class FleetProgram:
    """Instance-stacked training program over ``len(nets)`` member networks.

    All members must share topology, config, PDK and surrogates (checked);
    ``instances`` fixes the program width — members beyond ``len(nets)`` are
    pad replicas of member 0.
    """

    def __init__(
        self,
        nets: Sequence[PrintedNeuralNetwork],
        objectives: Sequence,
        split: DataSplit,
        settings: TrainerSettings,
        instances: int | None = None,
    ):
        if not nets:
            raise ValueError("fleet requires at least one network")
        if len(objectives) != len(nets):
            raise ValueError("one objective per network required")
        k = len(nets)
        n = k if instances is None else int(instances)
        if n < k:
            raise ValueError("instances must be >= len(nets)")

        ref = nets[0]
        self._structure_key = fleet_structure_key(objectives[0])
        for objective in objectives[1:]:
            if fleet_structure_key(objective) != self._structure_key:
                raise ValueError("all fleet objectives must share one structure key")
        self._check_members(nets, ref)

        self.split = split
        self.settings = settings
        self.instances = n
        self.n_real = k
        self._members = [nets[i] if i < k else nets[0] for i in range(n)]
        self.objectives = list(objectives) + [
            _clone_objective(objectives[0]) for _ in range(n - k)
        ]
        self._ref = ref
        self.n_layers = ref.n_layers
        self.signal_weight = ref.config.signal_health_weight

        # Per-instance learning rates, shared into every parameter's
        # lr_scale so the fused Adam applies instance ``i``'s rate to slice
        # ``i`` of every stacked leaf (u parameters at the serial 0.2 ratio).
        self._lrs = np.full(n, float(settings.lr))
        self._lr_theta = self._lrs.reshape(n, 1, 1).copy()
        self._lr_u = self._lr_theta * 0.2
        self._lr_dirty = False

        # Trainable leaves: θ stacks and u stacks, serial registration order
        # (crossbar_0, activation_0, crossbar_1, ...).
        self._theta_params: list[Parameter] = []
        self._u_params: list[list[Parameter]] = []
        for layer in range(self.n_layers):
            stack = np.stack(
                [member.crossbars()[layer].theta.data for member in self._members]
            )
            theta = Parameter(stack, name=f"crossbar_{layer}.theta")
            theta.lr_scale = self._lr_theta
            self._theta_params.append(theta)
            layer_us: list[Parameter] = []
            activation = ref.activations()[layer]
            for j in range(activation.space.dimension):
                values = np.array(
                    [
                        float(getattr(member.activations()[layer], f"u_{j}").data)
                        for member in self._members
                    ]
                ).reshape(n, 1, 1)
                u = Parameter(values, name=f"activation_{layer}.u_{j}")
                u.lr_scale = self._lr_u
                layer_us.append(u)
            self._u_params.append(layer_us)

        # Per-instance logit scales (no gradient — serial scale is a float).
        self._logit_t = Tensor(
            np.array([member.logit_scale for member in self._members]).reshape(n, 1, 1)
        )

        # Objective leaves.  AL: the five PHR leaves as (n, 1, 1) stacks,
        # value-refreshed per epoch.  Penalty: the fixed per-instance scale.
        if self._structure_key[0] == "al":
            self._lam_t = Tensor(np.zeros((n, 1, 1)))
            self._half_mu_t = Tensor(np.zeros((n, 1, 1)))
            self._budget_t = Tensor(np.ones((n, 1, 1)))
            self._inv_budget_t = Tensor(np.ones((n, 1, 1)))
            self._inactive_t = Tensor(np.zeros((n, 1, 1)))
        elif not self._structure_key[1]:
            self._penalty_scale_t = Tensor(
                np.array(
                    [o.alpha / o.reference_power for o in self.objectives]
                ).reshape(n, 1, 1)
            )

        self._x = Tensor(split.x_train)
        self._x_val = None if split.x_val is split.x_train else Tensor(split.x_val)

        self._eager = not settings.capture_graph
        self._step: CapturedGraph | None = None
        self._eval: CapturedGraph | None = None
        self._val: CapturedGraph | None = None
        self._step_outputs: tuple[Tensor, Tensor] | None = None
        self._eval_outputs: tuple[Tensor, Tensor] | None = None
        self._val_logits: Tensor | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _check_members(nets: Sequence[PrintedNeuralNetwork], ref: PrintedNeuralNetwork) -> None:
        cfg = ref.config
        ref_act = ref.activations()[0]
        if cfg.power_mode == "surrogate":
            shared = ref_act.surrogate
            if any(a.surrogate is not shared for a in ref.activations()):
                raise ValueError("fleet requires one shared activation surrogate per network")
        for net in nets:
            if net.n_layers != ref.n_layers:
                raise ValueError("fleet members must share the topology")
            c = net.config
            if (
                c.kind != cfg.kind
                or c.power_mode != cfg.power_mode
                or c.count_mode != cfg.count_mode
                or c.power_batch_limit != cfg.power_batch_limit
                or c.signal_health_weight != cfg.signal_health_weight
                or c.signal_health_floor != cfg.signal_health_floor
            ):
                raise ValueError("fleet members must share the PNC config")
            if not (c.pdk is cfg.pdk or c.pdk == cfg.pdk):
                raise ValueError("fleet members must share the PDK")
            if not np.array_equal(net.neg_q, ref.neg_q):
                raise ValueError("fleet members must share the negation design")
            for crossbar, ref_crossbar in zip(net.crossbars(), ref.crossbars()):
                if crossbar.theta.data.shape != ref_crossbar.theta.data.shape:
                    raise ValueError("fleet members must share crossbar shapes")
                if crossbar.bias_voltage != ref_crossbar.bias_voltage:
                    raise ValueError("fleet members must share the bias voltage")
            for activation in net.activations():
                if activation.space.dimension != ref_act.space.dimension:
                    raise ValueError("fleet members must share the design space")
            if cfg.power_mode == "surrogate":
                if not _same_surrogate(net.neg_surrogate, ref.neg_surrogate):
                    raise ValueError("fleet members must share the negation surrogate")
                for activation in net.activations():
                    if not _same_surrogate(activation.surrogate, ref_act.surrogate):
                        raise ValueError("fleet members must share the activation surrogate")

    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in range(self.n_layers):
            params.append(self._theta_params[layer])
            params.extend(self._u_params[layer])
        return params

    def set_instance_lr(self, index: int, value: float) -> None:
        """Write one instance's learning rate into the shared scale stacks."""
        self._lrs[index] = value
        self._lr_theta[index, 0, 0] = value
        self._lr_u[index, 0, 0] = value * 0.2
        self._lr_dirty = True

    # ------------------------------------------------------------------
    def _effective_theta(self, layer: int) -> Tensor:
        """Masked θ stack; mask structure is read fresh at every capture.

        Mirrors :meth:`CrossbarLayer.effective_theta` slice by slice
        (positive mask first, then keep mask).  ``set_masks`` on any member
        bumps the graph version, so the next ``run_step`` lands here again
        and re-bakes the stacked masks.
        """
        theta: Tensor = self._theta_params[layer]
        crossbars = [member.crossbars()[layer] for member in self._members]
        positives = [c._positive_mask for c in crossbars]
        keeps = [c._keep_mask for c in crossbars]
        has_positive = [m is not None for m in positives]
        has_keep = [m is not None for m in keeps]
        if any(has_positive) and not all(has_positive):
            raise ValueError("fleet members must agree on positive-mask presence per layer")
        if any(has_keep) and not all(has_keep):
            raise ValueError("fleet members must agree on keep-mask presence per layer")
        if all(has_positive):
            theta = theta.abs().where(np.stack(positives), theta)
        if all(has_keep):
            theta = theta.where(np.stack(keeps), Tensor(np.zeros_like(theta.data)))
        return theta

    def _health_term(self, signal: Tensor) -> Tensor:
        """Per-instance twin of ``PrintedNeuralNetwork._health_term`` → (n,)."""
        floor = self._ref.config.signal_health_floor
        if self.signal_weight <= 0.0 or floor <= 0.0:
            return Tensor(0.0)
        mean = signal.mean(axis=-2, keepdims=True)
        centered = signal - mean
        variance = (centered * centered).mean(axis=-2)
        std = (variance + 1e-12).sqrt()
        shortfall = (Tensor(np.full(std.shape, floor)) - std).relu()
        return (shortfall * shortfall).mean(axis=-1)

    def _forward_power(self) -> tuple[Tensor, Tensor, Tensor, Tensor, Tensor]:
        """Stacked twin of ``PrintedNeuralNetwork._forward_with_power``.

        Node-for-node transcription of the serial two-pass assembly: the
        same fresh input extensions (three per layer), the same fresh q
        materializations (two sets per layer) and per-layer negation q, the
        same reduction order — so instance slices reproduce the serial
        forward and backward bit for bit.
        """
        ref = self._ref
        config = ref.config
        n = self.instances
        threshold = config.pdk.prune_threshold_us
        straight = config.count_mode == "straight_through"
        limit = config.power_batch_limit
        crossbar_power = Tensor(0.0)
        health_penalty = Tensor(0.0)

        # Pass 1 — signal path.
        per_layer: list[tuple[Tensor, Tensor, Tensor]] = []
        signal: Tensor = self._x
        for layer in range(self.n_layers):
            crossbar = ref.crossbars()[layer]
            activation = ref.activations()[layer]
            theta = self._effective_theta(layer)
            v_ext = stacked_extend_inputs(crossbar, signal, n)
            numerator = v_ext @ theta
            denominator = theta.abs().sum(axis=-2, keepdims=True) + _EPS_G
            v_z = numerator / denominator
            per_layer.append((signal, v_z, theta))
            q_cols = [
                q_tensor_from_u(activation.space, j, u)
                for j, u in enumerate(self._u_params[layer])
            ]
            v_out, _ = activation.transfer.output_and_power(v_z, q_cols)
            if activation.training and activation.GRADIENT_LEAK > 0.0:
                v_out = v_out + (v_z - v_z.detach()) * activation.GRADIENT_LEAK
            signal = v_out
            health_penalty = health_penalty + self._health_term(signal)

        # Pass 2 — power assembly (crossbar term + activity coefficients).
        row_activities: list[Tensor] = []
        col_activities: list[Tensor] = []
        for layer, (layer_in, v_z, theta) in enumerate(per_layer):
            crossbar = ref.crossbars()[layer]
            v_ext = stacked_extend_inputs(crossbar, layer_in, n)
            matrix = crossbar_power_matrix_signed(theta, v_ext, -v_ext, v_z)
            crossbar_power = crossbar_power + matrix.sum(axis=(-2, -1))
            if straight:
                row_activities.append(
                    straight_through_row_negativity(theta, threshold=threshold)
                )
                col_activities.append(
                    straight_through_column_activity(theta, threshold=threshold)
                )
            else:
                row_activities.append(soft_row_negativity(theta, threshold=threshold))
                col_activities.append(soft_column_activity(theta, threshold=threshold))

        activation_power = Tensor(0.0)
        negation_power = Tensor(0.0)
        if config.power_mode == "surrogate":
            # P^N — one stacked MLP call over all layers, serial group order.
            neg_groups: list[tuple[list[Tensor], Tensor]] = []
            neg_shapes: list[tuple[int, int]] = []
            for layer, (layer_in, _v_z, _theta) in enumerate(per_layer):
                crossbar = ref.crossbars()[layer]
                v_ext = stacked_extend_inputs(crossbar, layer_in, n)
                v_sub = stacked_broadcast(stacked_subsample_rows(v_ext, limit), n)
                batch, rows = v_sub.shape[-2], v_sub.shape[-1]
                q = [Tensor(v) for v in ref.neg_q]
                neg_groups.append((q, v_sub.reshape(n, batch * rows, 1)))
                neg_shapes.append((batch, rows))
            neg_outputs = ref.neg_surrogate.predict_tensor_batched(neg_groups)
            for (batch, rows), output, row_activity in zip(
                neg_shapes, neg_outputs, row_activities
            ):
                per_row = output.reshape(n, batch, rows).mean(axis=-2)
                negation_power = negation_power + (row_activity * per_row).sum(axis=-1)

            # P^AF — fresh q materializations per layer (second serial set).
            shared = ref.activations()[0].surrogate
            af_groups: list[tuple[list[Tensor], Tensor]] = []
            af_shapes: list[tuple[int, int]] = []
            for layer, (_layer_in, v_z, _theta) in enumerate(per_layer):
                activation = ref.activations()[layer]
                q_cols = [
                    q_tensor_from_u(activation.space, j, u)
                    for j, u in enumerate(self._u_params[layer])
                ]
                flat, batch, n_cols = stacked_power_inputs(v_z, n, limit)
                af_groups.append((q_cols, flat))
                af_shapes.append((batch, n_cols))
            af_outputs = shared.predict_tensor_batched(af_groups)
            for (batch, n_cols), output, col_activity in zip(
                af_shapes, af_outputs, col_activities
            ):
                per_circuit = output.reshape(n, batch, n_cols).mean(axis=-2)
                activation_power = activation_power + (col_activity * per_circuit).sum(
                    axis=-1
                )
        else:
            from repro.pdk.transfer import NegationModel

            for layer, (layer_in, v_z, _theta) in enumerate(per_layer):
                crossbar = ref.crossbars()[layer]
                activation = ref.activations()[layer]
                v_ext = stacked_extend_inputs(crossbar, layer_in, n)
                v_sub = stacked_broadcast(stacked_subsample_rows(v_ext, limit), n)
                model = NegationModel(pdk=config.pdk)
                q = [Tensor(v) for v in ref.neg_q]
                _, per_sample = model.output_and_power(v_sub, q)
                per_row = per_sample.mean(axis=-2)
                negation_power = negation_power + (
                    row_activities[layer] * per_row
                ).sum(axis=-1)
                q_cols = [
                    q_tensor_from_u(activation.space, j, u)
                    for j, u in enumerate(self._u_params[layer])
                ]
                _, af_power = activation.transfer.output_and_power(v_z, q_cols)
                per_circuit = af_power.mean(axis=-2)
                activation_power = activation_power + (
                    col_activities[layer] * per_circuit
                ).sum(axis=-1)

        logits = signal * self._logit_t
        return logits, crossbar_power, activation_power, negation_power, health_penalty

    # ------------------------------------------------------------------
    def _prepare_epoch(self, epoch: int) -> None:
        """Refresh the per-instance AL leaves (value-only; replay-safe)."""
        if self._structure_key[0] != "al":
            return
        for i, objective in enumerate(self.objectives):
            budget = objective.effective_budget(epoch)
            self._lam_t.data[i] = objective.multiplier
            self._half_mu_t.data[i] = 0.5 * objective.mu
            self._budget_t.data[i] = budget
            self._inv_budget_t.data[i] = 1.0 / budget
            self._inactive_t.data[i] = -(objective.multiplier**2) / (2.0 * objective.mu)

    def _epoch_key(self, epoch: int):
        if self._structure_key[0] == "al":
            return 0 if epoch < self._structure_key[1] else 1
        return 0

    def _forward_step(self, epoch: int) -> tuple[Tensor, Tensor]:
        logits, crossbar_p, activation_p, negation_p, health = self._forward_power()
        task_vec = F.instance_cross_entropy(logits, self.split.y_train)
        power = (crossbar_p + activation_p) + negation_p
        power3 = power.reshape(-1, 1, 1)
        if self._structure_key[0] == "al":
            if epoch < self._structure_key[1]:
                total = task_vec
            else:
                c = (power3 - self._budget_t) * self._inv_budget_t
                active = constant_of(
                    lambda cd, lam, hm: ((lam + 2.0 * hm * cd) >= 0.0).astype(np.float64),
                    c,
                    self._lam_t,
                    self._half_mu_t,
                )
                branch = c * self._lam_t + (c * c) * self._half_mu_t
                total = task_vec + branch.where(active, self._inactive_t)
        elif self._structure_key[1]:
            total = task_vec
        else:
            total = task_vec + power3 * self._penalty_scale_t
        if self.signal_weight > 0.0:
            total = total + health.reshape(-1, 1, 1) * self.signal_weight
        return task_vec, total

    def _abandon_capture(self) -> None:
        logger.debug("fleet graph capture unavailable; running eagerly", exc_info=True)
        self._eager = True
        self._step = self._eval = self._val = None

    def run_step(self, epoch: int) -> tuple[Tensor, Tensor]:
        """One fleet epoch's forward + backward; ``(task_vec, total)``."""
        self._prepare_epoch(epoch)
        if self._eager:
            task_vec, total = self._forward_step(epoch)
            total.backward(np.ones_like(total.data))
            return task_vec, total
        key = self._epoch_key(epoch)
        if self._step is not None and self._step.is_valid(key):
            self._step.replay_forward()
            self._step.replay_backward()
            mark_replay_epoch()
            return self._step_outputs
        if self._step is not None:
            mark_recapture()
        with graph_capture():
            task_vec, total = self._forward_step(epoch)
        try:
            self._step = CapturedGraph((task_vec, total), backward_root=total, epoch_key=key)
        except GraphCaptureError:
            self._abandon_capture()
        self._step_outputs = (task_vec, total)
        if self._step is not None:
            self._step.replay_backward()
        else:
            total.backward(np.ones_like(total.data))
        return task_vec, total

    # ------------------------------------------------------------------
    def run_eval(self) -> tuple[Tensor, np.ndarray]:
        """Post-step forward; ``(logits, per-instance power array)``."""
        if not self._eager and self._eval is not None and self._eval.is_valid():
            self._eval.replay_forward()
            logits, power = self._eval_outputs
            return logits, power.data.reshape(self.instances).copy()
        if self._eager:
            with no_grad():
                logits, cp, ap, np_, _health = self._forward_power()
                power = (cp + ap) + np_
            return logits, power.data.reshape(self.instances).copy()
        if self._eval is not None:
            mark_recapture()
        with no_grad(), graph_capture():
            logits, cp, ap, np_, _health = self._forward_power()
            power = (cp + ap) + np_
        try:
            self._eval = CapturedGraph((logits, power))
        except GraphCaptureError:
            self._abandon_capture()
        self._eval_outputs = (logits, power)
        return logits, power.data.reshape(self.instances).copy()

    def _forward_signal(self, x: Tensor) -> Tensor:
        """Stacked twin of ``PrintedNeuralNetwork.forward`` (power-free)."""
        ref = self._ref
        signal = x
        for layer in range(self.n_layers):
            crossbar = ref.crossbars()[layer]
            activation = ref.activations()[layer]
            theta = self._effective_theta(layer)
            v_ext = stacked_extend_inputs(crossbar, signal, self.instances)
            numerator = v_ext @ theta
            denominator = theta.abs().sum(axis=-2, keepdims=True) + _EPS_G
            v_z = numerator / denominator
            q_cols = [
                q_tensor_from_u(activation.space, j, u)
                for j, u in enumerate(self._u_params[layer])
            ]
            v_out, _ = activation.transfer.output_and_power(v_z, q_cols)
            if activation.training and activation.GRADIENT_LEAK > 0.0:
                v_out = v_out + (v_z - v_z.detach()) * activation.GRADIENT_LEAK
            signal = v_out
        return signal * self._logit_t

    def val_accuracies(self, post_logits: Tensor) -> np.ndarray:
        """Per-instance validation accuracy, reusing logits when val is train."""
        if self._x_val is None:
            return F.instance_accuracy(post_logits, self.split.y_val)
        if not self._eager and self._val is not None and self._val.is_valid():
            self._val.replay_forward()
            return F.instance_accuracy(self._val_logits, self.split.y_val)
        if self._eager:
            with no_grad():
                logits = self._forward_signal(self._x_val)
            return F.instance_accuracy(logits, self.split.y_val)
        if self._val is not None:
            mark_recapture()
        with no_grad(), graph_capture():
            logits = self._forward_signal(self._x_val)
        try:
            self._val = CapturedGraph((logits,))
        except GraphCaptureError:
            self._abandon_capture()
        self._val_logits = logits
        return F.instance_accuracy(logits, self.split.y_val)

    # ------------------------------------------------------------------
    def project_(self) -> None:
        """Stacked post-step projection; per-slice twin of the serial one."""
        gmax = self._ref.config.pdk.conductance_max_us
        for theta in self._theta_params:
            data = theta.data
            magnitude = np.abs(data)
            sign = np.where(data >= 0, 1.0, -1.0)
            clipped = np.minimum(magnitude, gmax)
            np.multiply(sign, clipped, out=data)
            np.abs(data[:, -1, :], out=data[:, -1, :])
        for layer_us in self._u_params:
            for u in layer_us:
                np.clip(u.data, -10.0, 10.0, out=u.data)

    def instance_state(self, index: int) -> dict[str, np.ndarray]:
        """Instance ``index``'s parameters as a serial ``state_dict``."""
        state: dict[str, np.ndarray] = {}
        for layer in range(self.n_layers):
            state[f"crossbar_{layer}.theta"] = self._theta_params[layer].data[index].copy()
            for j, u in enumerate(self._u_params[layer]):
                state[f"activation_{layer}.u_{j}"] = np.array(u.data[index, 0, 0])
        return state


def train_fleet(
    nets: Sequence[PrintedNeuralNetwork],
    split: DataSplit,
    objectives: Sequence,
    settings: TrainerSettings | None = None,
    instances: int | None = None,
    run_logger=None,
    chunk_index: int | None = None,
) -> list[TrainResult]:
    """Train ``len(nets)`` networks as one vectorized fleet.

    Drop-in batched twin of calling
    :func:`~repro.training.trainer.train_model` per ``(net, objective)``
    pair: returns one :class:`TrainResult` per real network, bit-identical
    to the serial loop's (traces, checkpoints, final metrics).  ``instances``
    optionally pads the program to a fixed width so tail chunks reuse a
    captured program shape.
    """
    settings = settings or TrainerSettings()
    program = FleetProgram(nets, objectives, split, settings, instances=instances)
    n = program.instances
    k = program.n_real
    objectives = program.objectives

    optimizer = optim.Adam(program.parameters(), lr=1.0)
    schedulers = [
        optim.ReduceLROnPlateau(
            _InstanceLr(program, i),
            patience=settings.patience,
            factor=settings.lr_factor,
            min_lr=settings.min_lr,
            mode="max",
        )
        for i in range(n)
    ]
    recorders = [TraceRecorder(settings.trace_every) for _ in range(n)]
    budgets = [getattr(objective, "power_budget", None) for objective in objectives]

    best_val = np.full(n, -1.0)
    best_states: list[dict[str, np.ndarray] | None] = [None] * n
    best_epochs = np.full(n, -1, dtype=int)
    fallback_power = np.full(n, np.inf)
    fallback_states: list[dict[str, np.ndarray] | None] = [None] * n
    stale = np.zeros(n, dtype=int)
    stopped = np.zeros(n, dtype=bool)
    last_epoch = np.zeros(n, dtype=int)

    fleet_start = perf_counter()
    epochs_executed = 0
    for epoch in range(settings.epochs):
        if stopped[:k].all():
            break
        epochs_executed = epoch + 1
        epoch_start = perf_counter()
        optimizer.zero_grad()
        task_vec, _total = program.run_step(epoch)
        if program._lr_dirty:
            optimizer.refresh_lr_scales()
            program._lr_dirty = False
        optimizer.step()
        program.project_()
        step_time = perf_counter() - epoch_start
        _FLEET_STEP_SECONDS.observe(step_time)

        eval_start = perf_counter()
        post_logits, power_values = program.run_eval()
        # Dual updates run before validation accuracy, exactly as in the
        # serial loop (multiplier traces pair with this epoch's power).
        for i in range(n):
            if not stopped[i]:
                objectives[i].on_epoch_end(float(power_values[i]), epoch)
        accuracies = program.val_accuracies(post_logits)
        eval_time = perf_counter() - eval_start
        epoch_time = perf_counter() - epoch_start

        violation: float | None = None
        for i in range(n):
            if stopped[i]:
                continue
            last_epoch[i] = epoch
            power_value = float(power_values[i])
            val_accuracy = float(accuracies[i])
            feasible_now = objectives[i].is_feasible(power_value)
            if i < k and budgets[i]:
                instance_violation = max(0.0, (power_value - budgets[i]) / budgets[i])
                violation = (
                    instance_violation
                    if violation is None
                    else max(violation, instance_violation)
                )
            is_best = feasible_now and val_accuracy > best_val[i]
            if is_best:
                best_val[i] = val_accuracy
                best_states[i] = program.instance_state(i)
                best_epochs[i] = epoch
                stale[i] = 0
            else:
                stale[i] += 1
            if power_value < fallback_power[i]:
                fallback_power[i] = power_value
                fallback_states[i] = program.instance_state(i)
            schedulers[i].step(val_accuracy if feasible_now else -1.0)
            event = EpochEvent(
                epoch=epoch,
                loss=float(task_vec.data[i, 0, 0]),
                power=power_value,
                val_accuracy=val_accuracy,
                feasible=feasible_now,
                lr=float(program._lrs[i]),
                multiplier=_objective_multiplier(objectives[i]),
                is_best=is_best,
                epoch_time_s=epoch_time,
                epoch_step_time_s=step_time,
                epoch_eval_time_s=eval_time,
            )
            recorders[i].on_epoch(event)
            if program._lrs[i] <= settings.min_lr and stale[i] >= settings.early_stop_stale:
                stopped[i] = True
        if violation is not None:
            _POWER_VIOLATION.set(violation)

    _FLEET_INSTANCES.inc(k)
    if run_logger is not None and run_logger.enabled:
        fields = {
            "instances": k,
            "epoch": epochs_executed,
            "duration_s": perf_counter() - fleet_start,
        }
        if chunk_index is not None:
            fields["chunk_index"] = int(chunk_index)
        run_logger.emit("fleet", **fields)

    # Finalize each real instance through the serial evaluation path.
    results: list[TrainResult] = []
    for i in range(k):
        net = nets[i]
        if best_states[i] is not None:
            net.load_state_dict(best_states[i])
            chosen_epoch = int(best_epochs[i])
        elif fallback_states[i] is not None:
            net.load_state_dict(fallback_states[i])
            chosen_epoch = -1
        else:
            chosen_epoch = -1
        train_accuracy, power = evaluate_model(net, split.x_train, split.y_train)
        val_accuracy = _accuracy_only(net, split.x_val, split.y_val)
        test_accuracy = _accuracy_only(net, split.x_test, split.y_test)
        results.append(
            TrainResult(
                train_accuracy=train_accuracy,
                val_accuracy=val_accuracy,
                test_accuracy=test_accuracy,
                power=power,
                feasible=objectives[i].is_feasible(power),
                device_count=net.device_count(),
                epochs_run=int(last_epoch[i]) + 1,
                best_epoch=chosen_epoch,
                loss_trace=recorders[i].loss_trace,
                power_trace=recorders[i].power_trace,
                val_accuracy_trace=recorders[i].val_accuracy_trace,
                multiplier_trace=recorders[i].multiplier_trace,
                state=net.state_dict(),
                counts=net.hard_counts(),
            )
        )
    return results
