"""Stdlib HTTP serving of a frozen pNC artifact.

A :class:`ServingServer` wraps an :class:`~repro.serving.artifact.InferenceModel`
in a ``ThreadingHTTPServer`` JSON API:

====================  ======================================================
``POST /predict``     ``{"rows": [[...], ...]}`` → per-row label, confidence
                      and raw logits.  Concurrent requests coalesce through
                      the :class:`~repro.serving.batching.MicroBatcher`.
``GET /healthz``      liveness: status, uptime, rows served.
``GET /model``        the artifact's metadata (provenance, power, config).
``GET /metrics``      Prometheus text exposition of the process registry.
====================  ======================================================

Logits cross the wire as JSON floats; Python serializes floats by shortest
round-trip ``repr``, so the client-side parse restores bitwise the values
the engine produced — exactness survives HTTP.

Every request is instrumented (counters, latency histogram) and — when a
``RunLogger`` is attached — emitted as a schema-valid ``serve`` event, so a
serving process produces the same auditable run record as a training run.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time

import numpy as np

from repro.observability.metrics import get_registry
from repro.observability.tracing import new_trace_id, trace_context, trace_span
from repro.serving.artifact import InferenceModel
from repro.serving.batching import MicroBatcher
from repro.serving.httpbase import AppServer, JsonHandler

logger = logging.getLogger(__name__)

_REQUESTS = get_registry().counter("serving_requests_total", "HTTP requests handled")
_ERRORS = get_registry().counter("serving_request_errors", "HTTP requests answered with 4xx/5xx")
_ROWS = get_registry().counter("serving_rows_total", "feature rows served over HTTP")
#: Sub-millisecond-resolved buckets: single-row pNC inference sits in the
#: hundreds of microseconds, so the default seconds-flavoured bounds would
#: collapse p50/p95/p99 into the first bucket.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
_LATENCY = get_registry().histogram(
    "serving_request_latency_s", "request wall time (seconds)", buckets=LATENCY_BUCKETS
)

#: Accepted X-Trace-Id shape — anything else is replaced, never echoed
#: (header values flow into logs and trace files verbatim).
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def _request_trace_id(headers) -> str:
    """The request's X-Trace-Id, sanitized, or a freshly generated one."""
    candidate = headers.get("X-Trace-Id", "")
    if candidate and _TRACE_ID_RE.match(candidate):
        return candidate
    return new_trace_id()

#: Refuse absurd request bodies before json.loads touches them.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(JsonHandler):
    # Set by AppServer on the server object, read here via self.server.app.

    @property
    def _ctx(self) -> "ServingServer":
        return self.app  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        started = time.monotonic()
        ctx = self._ctx
        if self.path == "/healthz":
            self._respond(
                200,
                {
                    "status": "ok",
                    "uptime_s": round(time.monotonic() - ctx.started_at, 3),
                    "rows_served": int(_ROWS.value),
                    "engine_captured": ctx.model.engine.is_captured,
                },
                "healthz",
                started,
            )
        elif self.path == "/model":
            self._respond(200, ctx.model.describe(), "model", started)
        elif self.path == "/metrics":
            self._respond_text(200, get_registry().render_prometheus(), "metrics", started)
        else:
            self._respond(404, {"error": f"unknown path {self.path}"}, "unknown", started)

    def do_POST(self) -> None:
        started = time.monotonic()
        if self.path != "/predict":
            self._respond(404, {"error": f"unknown path {self.path}"}, "unknown", started)
            return
        # The request's trace id is echoed on every /predict response —
        # even untraced servers keep the round trip intact — and bound as
        # the ambient trace context so batcher/engine spans join it.
        trace_id = _request_trace_id(self.headers)
        headers = {"X-Trace-Id": trace_id}
        with trace_context(trace_id):
            with trace_span("serving.request", "serving"):
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    if length <= 0 or length > MAX_BODY_BYTES:
                        raise ValueError(f"invalid Content-Length {length}")
                    payload = json.loads(self.rfile.read(length).decode("utf-8"))
                    rows = np.asarray(payload["rows"], dtype=np.float64)
                    if rows.ndim == 1:
                        rows = rows.reshape(1, -1)
                    model = self._ctx.model
                    if rows.ndim != 2 or rows.shape[1] != model.in_features:
                        raise ValueError(
                            f"expected rows of {model.in_features} features, "
                            f"got shape {tuple(rows.shape)}"
                        )
                    if not np.all(np.isfinite(rows)):
                        raise ValueError("feature rows must be finite")
                except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                    self._respond(
                        400, {"error": f"bad request: {exc}"}, "predict", started,
                        headers=headers,
                    )
                    return
                try:
                    logits = self._ctx.batcher.predict(rows)
                except Exception as exc:  # engine/batcher failure — a server error
                    logger.exception("predict failed")
                    self._respond(
                        500, {"error": f"inference failed: {exc}"}, "predict", started,
                        headers=headers,
                    )
                    return
                with trace_span("serving.serialize", "serving"):
                    labels = np.argmax(logits, axis=1)
                    shifted = np.exp(logits - logits.max(axis=1, keepdims=True))
                    probabilities = shifted / shifted.sum(axis=1, keepdims=True)
                    confidence = probabilities[np.arange(len(labels)), labels]
                    self._respond(
                        200,
                        {
                            "predictions": [
                                {"label": int(label), "confidence": float(conf)}
                                for label, conf in zip(labels, confidence)
                            ],
                            "logits": logits.tolist(),
                            "rows": len(rows),
                            "trace_id": trace_id,
                        },
                        "predict",
                        started,
                        rows=len(rows),
                        headers=headers,
                    )


class ServingServer(AppServer):
    """Threaded HTTP server over a frozen model, with coalesced batching.

    The HTTP lifecycle (bind, background/blocking serve, ``max_requests``
    self-shutdown) lives in :class:`repro.serving.httpbase.AppServer`;
    this class adds the model, the batcher, ``serving_*`` metrics and the
    per-request ``serve`` event.

    Parameters
    ----------
    model:
        The loaded :class:`InferenceModel` to serve.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read ``self.port``
        after construction).
    max_batch, max_delay_s:
        :class:`MicroBatcher` knobs — flush thresholds for coalescing.
    run_logger:
        Optional :class:`repro.observability.events.RunLogger`; every request
        is emitted as a ``serve`` event (sinks are not thread-safe, so
        emissions are serialized by a lock).
    max_requests:
        Optional self-shutdown after N requests — used by smoke tests to
        bound a server's lifetime without signals.
    """

    handler_class = _Handler
    thread_name = "serving-http"

    def __init__(
        self,
        model: InferenceModel,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        run_logger=None,
        max_requests: int | None = None,
    ):
        self.model = model
        self.batcher = MicroBatcher(model.engine.run, max_batch=max_batch, max_delay_s=max_delay_s)
        self.run_logger = run_logger
        self._emit_lock = threading.Lock()
        super().__init__(host=host, port=port, max_requests=max_requests)

    # ------------------------------------------------------------------
    def _account(self, endpoint: str, status: int, duration: float, rows: int, error) -> None:
        _REQUESTS.inc()
        _LATENCY.observe(duration)
        if status >= 400:
            _ERRORS.inc()
        if rows:
            _ROWS.inc(rows)
        self._emit_serve(endpoint, status, rows, duration, error)
        self._note_request()

    def _emit_serve(self, endpoint: str, status: int, rows: int, duration: float, error) -> None:
        if self.run_logger is None:
            return
        fields = {
            "endpoint": endpoint,
            "status": int(status),
            "rows": int(rows),
            "duration_s": float(duration),
        }
        if error:
            fields["error"] = str(error)
        with self._emit_lock:
            self.run_logger.emit("serve", **fields)

    # ------------------------------------------------------------------
    def start(self) -> "ServingServer":
        """Serve in a background thread (tests, embedding)."""
        logger.info("serving %s on %s", self.model.path or "<model>", self.url)
        super().start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI path)."""
        logger.info("serving %s on %s", self.model.path or "<model>", self.url)
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting requests and drain the batcher."""
        super().shutdown()
        self.batcher.close()

    def __enter__(self) -> "ServingServer":
        return self.start()
