"""Frozen model artifacts + batched inference serving.

The first subsystem downstream of training: a trained printed neuromorphic
circuit is frozen into a self-contained, provenance-stamped artifact and
served — offline (``repro predict``) or over HTTP (``repro serve``) — by a
forward-only captured-graph engine with request coalescing.

- :mod:`repro.serving.artifact` — the versioned ``.pnz`` bundle
  (``export_artifact`` / ``load_artifact`` / :class:`InferenceModel`);
- :mod:`repro.serving.engine` — fixed-shape micro-batch replay engine
  (:class:`InferenceEngine`);
- :mod:`repro.serving.batching` — request-coalescing queue
  (:class:`MicroBatcher`);
- :mod:`repro.serving.server` — stdlib ``ThreadingHTTPServer`` JSON API
  (:class:`ServingServer`: ``/predict``, ``/healthz``, ``/model``,
  ``/metrics``);
- :mod:`repro.serving.client` — thin stdlib HTTP client
  (:class:`ServingClient`).
"""

from repro.serving.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    InferenceModel,
    export_artifact,
    load_artifact,
)
from repro.serving.batching import MicroBatcher
from repro.serving.client import ServingClient
from repro.serving.engine import InferenceEngine
from repro.serving.server import ServingServer

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "InferenceModel",
    "export_artifact",
    "load_artifact",
    "InferenceEngine",
    "MicroBatcher",
    "ServingServer",
    "ServingClient",
]
