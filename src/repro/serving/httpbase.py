"""Shared stdlib HTTP plumbing for the repo's servers.

Two subsystems speak HTTP — model serving (:mod:`repro.serving.server`)
and the run dashboard (:mod:`repro.observability.dashboard`) — and both
need the same machinery: a ``ThreadingHTTPServer`` with daemon handler
threads, JSON/text responses with correct ``Content-Length``, per-request
accounting, a background-thread ``start()`` for tests and a blocking
``serve_forever()`` for the CLI, and the ``max_requests`` self-shutdown
trick (handing ``shutdown()`` to a helper thread, because calling it from
a handler thread the server is joining on deadlocks).

:class:`AppServer` owns that lifecycle; subclasses set
:attr:`~AppServer.handler_class` and override :meth:`~AppServer._account`
to wire in their own metrics/telemetry.  :class:`JsonHandler` is the
matching request-handler base: endpoints call :meth:`~JsonHandler._respond`
/ :meth:`~JsonHandler._respond_text` and accounting happens on the way out.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

logger = logging.getLogger(__name__)


class JsonHandler(BaseHTTPRequestHandler):
    """Request-handler base: JSON/text responses + exit-path accounting."""

    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> "AppServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond(
        self,
        status: int,
        payload: dict,
        endpoint: str,
        started: float,
        rows: int = 0,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"), "application/json", headers)
        error = payload.get("error") if isinstance(payload, dict) else None
        self.app._account(endpoint, status, time.monotonic() - started, rows, error)

    def _respond_text(
        self,
        status: int,
        text: str,
        endpoint: str,
        started: float,
        content_type: str = "text/plain; version=0.0.4",
    ) -> None:
        self._send(status, text.encode("utf-8"), content_type)
        self.app._account(endpoint, status, time.monotonic() - started, 0, None)


class AppServer:
    """Threaded-HTTP-server lifecycle: bind, start/serve, account, shut down.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read ``self.port``
        after construction).
    max_requests:
        Optional self-shutdown after N requests — used by smoke tests to
        bound a server's lifetime without signals.
    """

    #: Subclasses point this at their :class:`JsonHandler` subclass.
    handler_class: type = JsonHandler
    #: Name of the background serve thread (shows up in thread dumps).
    thread_name: str = "app-http"

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, max_requests: int | None = None):
        self.max_requests = max_requests
        self.started_at = time.monotonic()
        self._requests_seen = 0
        self._thread: threading.Thread | None = None
        self._httpd = ThreadingHTTPServer((host, port), self.handler_class)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]

    # ------------------------------------------------------------------
    def _account(self, endpoint: str, status: int, duration: float, rows: int, error) -> None:
        """Per-request hook (metrics, telemetry).  Call super() last —
        the ``max_requests`` countdown lives here."""
        self._note_request()

    def _note_request(self) -> None:
        if self.max_requests is None:
            return
        self._requests_seen += 1
        if self._requests_seen >= self.max_requests:
            # shutdown() deadlocks when called from a handler thread the
            # server is joining on — hand it to a helper thread.
            threading.Thread(target=self.shutdown, daemon=True).start()

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AppServer":
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=self.thread_name, daemon=True
        )
        self._thread.start()
        logger.info("%s listening on %s", self.thread_name, self.url)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI path)."""
        logger.info("%s listening on %s", self.thread_name, self.url)
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting requests and join the serve thread."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def close(self) -> None:
        self.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "AppServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
