"""Request-coalescing micro-batcher for the serving layer.

Concurrent ``predict`` calls land on one queue; a single worker thread
drains it, concatenates the pending rows into one batch, runs the engine
once, and slices the result back to the waiting callers via futures.  This
turns N concurrent single-row requests into ~1 replay instead of N.

Correctness does not depend on how requests coalesce: the engine evaluates
every row at one fixed micro-batch shape (see :mod:`repro.serving.engine`),
so a coalesced batch returns bitwise the same logits each request would have
received alone.  Coalescing is purely a throughput optimization, bounded by
two knobs:

- ``max_batch`` — flush once this many rows are pending;
- ``max_delay_s`` — flush at this age even if the batch is small, bounding
  the latency a lone request pays for the chance of company.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable

import numpy as np

from repro.observability.metrics import get_registry
from repro.observability.tracing import (
    current_trace_context,
    get_tracer,
    trace_context,
    trace_span,
)

logger = logging.getLogger(__name__)

_BATCHES = get_registry().counter(
    "serving_batches", "coalesced batches executed by the micro-batcher"
)
_COALESCED = get_registry().counter(
    "serving_coalesced_requests", "requests served by the micro-batcher"
)
_LAST_BATCH_ROWS = get_registry().gauge(
    "serving_last_batch_rows", "rows in the most recent coalesced batch"
)

_SENTINEL = object()


class MicroBatcher:
    """Coalesce concurrent predict calls into batched engine runs.

    Parameters
    ----------
    run:
        The batched forward, ``(n, in_features) -> (n, out_features)``
        (typically ``InferenceEngine.run``).
    max_batch:
        Maximum rows per flush; a request larger than this still runs,
        as its own batch.
    max_delay_s:
        Maximum time a pending request waits for co-batchers.
    """

    def __init__(
        self,
        run: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 64,
        max_delay_s: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self._run = run
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._worker = threading.Thread(target=self._loop, name="micro-batcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, rows: np.ndarray) -> Future:
        """Enqueue ``rows``; the future resolves to their logits.

        The caller's trace context crosses the queue with the request
        (contextvars do not follow work across threads), so queue-wait and
        replay spans recorded by the batcher thread join the right trace.
        """
        if self._closed:
            raise RuntimeError("micro-batcher is closed")
        rows = np.asarray(rows, dtype=np.float64)
        future: Future = Future()
        ctx = current_trace_context() if get_tracer().enabled else None
        self._queue.put((rows, future, time.perf_counter(), ctx))
        return future

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(rows).result()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            pending = [item]
            rows_pending = len(item[0])
            deadline = time.monotonic() + self.max_delay_s
            stop = False
            while rows_pending < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _SENTINEL:
                    # Flush what we have, then honor the shutdown.
                    stop = True
                    break
                pending.append(extra)
                rows_pending += len(extra[0])
            self._flush(pending)
            if stop:
                return

    def _flush(self, pending: list) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            # One queue-wait span per request, attributed to its own trace.
            t_flush = time.perf_counter()
            for rows, _, t_submit, ctx in pending:
                trace_id, parent_id = ctx if ctx is not None else (None, None)
                tracer.record(
                    "serving.queue_wait", "serving", t_submit, t_flush - t_submit,
                    trace_id=trace_id, parent_id=parent_id, args={"rows": len(rows)},
                )
            # Batch-level spans run under the lead request's trace so the
            # timeline shows which request's flush carried the others.
            lead = next((ctx for _, _, _, ctx in pending if ctx is not None), (None, None))
            with trace_context(lead[0], lead[1]):
                with trace_span(
                    "serving.batch", "serving",
                    args={"requests": len(pending), "rows": sum(len(p[0]) for p in pending)},
                ):
                    self._flush_inner(pending)
        else:
            self._flush_inner(pending)

    def _flush_inner(self, pending: list) -> None:
        with trace_span("serving.batch_assembly", "serving"):
            batch = np.concatenate([item[0] for item in pending], axis=0)
        _LAST_BATCH_ROWS.set(len(batch))
        _BATCHES.inc()
        _COALESCED.inc(len(pending))
        if len(pending) > 1:
            logger.debug("coalesced %d requests into a %d-row batch", len(pending), len(batch))
        try:
            with trace_span("serving.replay", "serving", args={"rows": len(batch)}):
                outputs = self._run(batch)
        except Exception as exc:
            for item in pending:
                item[1].set_exception(exc)
            return
        offset = 0
        for item in pending:
            rows, future = item[0], item[1]
            future.set_result(outputs[offset:offset + len(rows)])
            offset += len(rows)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker after draining already-queued requests."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SENTINEL)
        self._worker.join(timeout=10.0)
        # Fail any request that raced past the closed check after the
        # sentinel — better a clean error than a future that never resolves.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SENTINEL:
                item[1].set_exception(RuntimeError("micro-batcher closed"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
