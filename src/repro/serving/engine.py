"""Fixed-shape captured-graph inference engine.

The serving forward reuses the training repo's captured-graph machinery
(:func:`repro.autograd.graph.capture_forward`): the network's forward is
recorded once over a preallocated ``(B, in_features)`` input buffer and every
subsequent request replays the flat kernel schedule — no Tensor boxes, no
graph construction, no Python autograd overhead per request.

**The fixed-shape invariant.**  BLAS matmul kernels choose different
instruction schedules for different matrix shapes, so the low-order bits of a
row's logits can depend on *how many other rows shared its batch*.  That
would make a batching server non-deterministic: the same row could yield
different bits depending on which concurrent requests it was coalesced with.
The engine therefore evaluates **every** row at one constant micro-batch
shape ``B``, zero-padding partial chunks.  Zero pad rows do not perturb the
real rows' bits (matmul row independence), so

    run(rows A) ++ run(rows B)  ==  run(rows A ++ B)   (bitwise)

for any grouping of rows into requests — the property the batched HTTP
server relies on to return exactly the outputs a serial client would see.

If capture is impossible (an op without a forward thunk), the engine
permanently falls back to an eager forward **over the same fixed-shape
buffer**, preserving the invariant at reduced speed.
"""

from __future__ import annotations

import logging
import threading
from time import perf_counter

import numpy as np

from repro.autograd.graph import CapturedGraph, GraphCaptureError, capture_forward
from repro.autograd.tensor import Tensor, no_grad
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.observability.metrics import get_registry
from repro.observability.tracing import get_kernel_profiler

logger = logging.getLogger(__name__)

_ENGINE_ROWS = get_registry().counter(
    "serving_engine_rows", "feature rows evaluated by the inference engine"
)
_ENGINE_REPLAYS = get_registry().counter(
    "serving_engine_replays", "fixed-shape graph replays executed by the inference engine"
)
_ENGINE_RECAPTURES = get_registry().counter(
    "serving_engine_recaptures", "inference graphs invalidated and re-recorded"
)
_ENGINE_FALLBACKS = get_registry().counter(
    "serving_engine_fallbacks", "inference engines running eager (capture failed)"
)

#: Default micro-batch shape.  Large enough that batched serving amortizes
#: per-replay overhead, small enough that single-row latency (one padded
#: replay) stays cheap for the paper's tiny classifiers.
DEFAULT_MICRO_BATCH = 32


class InferenceEngine:
    """Forward-only replay of a frozen pNC at one constant batch shape.

    Parameters
    ----------
    net:
        An inference-mode network (``net.eval()``, analytic power mode) —
        typically the product of :func:`repro.serving.artifact.load_artifact`.
    micro_batch:
        The fixed shape ``B``; requests are chunked/padded to it.
    """

    def __init__(self, net: PrintedNeuralNetwork, micro_batch: int = DEFAULT_MICRO_BATCH):
        if micro_batch < 2:
            # B == 1 would hit numpy's GEMV path, whose bits differ from the
            # GEMM path used at B >= 2 — the one shape that breaks grouping
            # invariance.
            raise ValueError("micro_batch must be at least 2")
        self.net = net
        self.micro_batch = int(micro_batch)
        self._buffer = Tensor(np.zeros((self.micro_batch, net.in_features)))
        self._graph: CapturedGraph | None = None
        self._eager = False
        self._lock = threading.Lock()
        self._capture()

    # ------------------------------------------------------------------
    def _capture(self) -> None:
        try:
            self._graph = capture_forward(self.net.forward, self._buffer)
        except GraphCaptureError as exc:  # pragma: no cover - defensive
            _ENGINE_FALLBACKS.inc()
            logger.warning("inference capture failed (%s); running eager at fixed shape", exc)
            self._graph = None
            self._eager = True
        # Per-kernel attribution for traced serving processes: one timing
        # reading per kernel under --trace, nothing otherwise.
        profiler = get_kernel_profiler()
        self._kernel_rec = (
            profiler.recording("serving.replay", self._graph.kernel_names())
            if self._graph is not None and profiler.enabled
            else None
        )

    @property
    def n_ops(self) -> int:
        """Kernels per replay (0 when running eager)."""
        return 0 if self._graph is None else self._graph.n_ops

    @property
    def is_captured(self) -> bool:
        return self._graph is not None

    # ------------------------------------------------------------------
    def _forward_chunk(self, chunk: np.ndarray) -> np.ndarray:
        """Evaluate ``chunk`` (≤ B rows) at the fixed shape; return its logits."""
        n = len(chunk)
        self._buffer.data[:n] = chunk
        if n < self.micro_batch:
            self._buffer.data[n:] = 0.0
        if self._eager:
            with no_grad():
                out = self.net.forward(self._buffer).data
            return out[:n].copy()
        graph = self._graph
        if not graph.is_valid():
            _ENGINE_RECAPTURES.inc()
            logger.info("inference graph invalidated; re-recording")
            self._capture()
            if self._eager:  # recapture itself failed
                return self._forward_chunk(chunk)
            graph = self._graph
        rec = self._kernel_rec
        if rec is None:
            graph.replay_forward()
        else:
            t0 = perf_counter()
            graph.replay_forward(rec.times)
            rec.note_replay(perf_counter() - t0)
        _ENGINE_REPLAYS.inc()
        return graph.outputs[0].data[:n].copy()

    def run(self, x: np.ndarray) -> np.ndarray:
        """Logits ``(n, out_features)`` for ``x`` of shape ``(n, in_features)``.

        Thread-safe (one replay at a time — the buffers are shared state);
        results are bitwise independent of how rows are split across calls.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.net.in_features:
            raise ValueError(
                f"expected (n, {self.net.in_features}) feature rows, got shape {x.shape}"
            )
        outputs = np.empty((len(x), self.net.out_features))
        with self._lock:
            for start in range(0, len(x), self.micro_batch):
                chunk = x[start:start + self.micro_batch]
                outputs[start:start + len(chunk)] = self._forward_chunk(chunk)
        _ENGINE_ROWS.inc(len(x))
        return outputs
