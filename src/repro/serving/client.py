"""Thin stdlib HTTP client for a :class:`~repro.serving.server.ServingServer`.

Pure ``urllib.request`` — no dependencies — so any process with the repo on
its path (tests, CI smoke jobs, notebooks) can talk to a serving process.
JSON floats round-trip bitwise (shortest-repr serialization on the server,
exact parse here), so :meth:`ServingClient.predict_logits` returns exactly
the engine's logits.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np


class ServingClientError(RuntimeError):
    """The server answered with an error status (the body is included)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServingClient:
    """Talk to a running serving process.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8080`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, path: str, payload: dict | None = None) -> bytes:
        request = urllib.request.Request(
            self.base_url + path,
            data=None if payload is None else json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="GET" if payload is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(body).get("error", body)
            except json.JSONDecodeError:
                message = body
            raise ServingClientError(exc.code, message) from exc

    def _request_json(self, path: str, payload: dict | None = None) -> dict:
        return json.loads(self._request(path, payload).decode("utf-8"))

    # ------------------------------------------------------------------
    def predict(self, rows) -> dict:
        """Full ``/predict`` response: predictions, logits, row count."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        return self._request_json("/predict", {"rows": rows.tolist()})

    def predict_logits(self, rows) -> np.ndarray:
        """Logits ``(n, n_classes)`` — bitwise the server engine's output."""
        return np.asarray(self.predict(rows)["logits"], dtype=np.float64)

    def healthz(self) -> dict:
        return self._request_json("/healthz")

    def model(self) -> dict:
        return self._request_json("/model")

    def metrics_text(self) -> str:
        return self._request("/metrics").decode("utf-8")
