"""Thin stdlib HTTP client for a :class:`~repro.serving.server.ServingServer`.

Pure ``urllib.request`` — no dependencies — so any process with the repo on
its path (tests, CI smoke jobs, notebooks) can talk to a serving process.
JSON floats round-trip bitwise (shortest-repr serialization on the server,
exact parse here), so :meth:`ServingClient.predict_logits` returns exactly
the engine's logits.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np

from repro.observability.tracing import (
    current_trace_id,
    new_trace_id,
    trace_context,
    trace_span,
)


class ServingClientError(RuntimeError):
    """The server answered with an error status (the body is included)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServingClient:
    """Talk to a running serving process.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8080`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: X-Trace-Id the server echoed on the most recent request, if any.
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    def _request(
        self, path: str, payload: dict | None = None, headers: dict | None = None
    ) -> bytes:
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        request = urllib.request.Request(
            self.base_url + path,
            data=None if payload is None else json.dumps(payload).encode("utf-8"),
            headers=request_headers,
            method="GET" if payload is None else "POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                self.last_trace_id = response.headers.get("X-Trace-Id")
                return response.read()
        except urllib.error.HTTPError as exc:
            self.last_trace_id = exc.headers.get("X-Trace-Id") if exc.headers else None
            body = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(body).get("error", body)
            except json.JSONDecodeError:
                message = body
            raise ServingClientError(exc.code, message) from exc

    def _request_json(
        self, path: str, payload: dict | None = None, headers: dict | None = None
    ) -> dict:
        return json.loads(self._request(path, payload, headers).decode("utf-8"))

    # ------------------------------------------------------------------
    def predict(self, rows, trace_id: str | None = None) -> dict:
        """Full ``/predict`` response: predictions, logits, row count.

        Every request carries an ``X-Trace-Id`` — ``trace_id`` if given,
        else the ambient trace context, else a freshly generated id — and
        the server echoes it back (readable as :attr:`last_trace_id`), so
        client- and server-side spans of one call share a trace.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        tid = trace_id or current_trace_id() or new_trace_id()
        with trace_context(tid):
            with trace_span("serving.client.predict", "serving", args={"rows": len(rows)}):
                return self._request_json(
                    "/predict", {"rows": rows.tolist()}, headers={"X-Trace-Id": tid}
                )

    def predict_logits(self, rows) -> np.ndarray:
        """Logits ``(n, n_classes)`` — bitwise the server engine's output."""
        return np.asarray(self.predict(rows)["logits"], dtype=np.float64)

    def healthz(self) -> dict:
        return self._request_json("/healthz")

    def model(self) -> dict:
        return self._request_json("/model")

    def metrics_text(self) -> str:
        return self._request("/metrics").decode("utf-8")
