"""Frozen model artifacts: a trained pNC as one verifiable ``.pnz`` bundle.

Printed circuits are bespoke — every trained network is a distinct physical
design — so the serving unit is a *frozen run*: the crossbar conductances θ,
the fine-tuning masks, the learned activation parameters q, the calibrated
logit scale and the negation design, stamped with the provenance of the run
that produced them (git SHA, resolved config, seed) and the training-time
power summary.

Bundle layout (one zip file, conventional extension ``.pnz``)::

    model.pnz
        artifact.json       schema version, model config, provenance,
                            surrogate metadata, power summary, checksum
        arrays.npz          param::<name>      state-dict entries
                            mask::keep::<i>    per-crossbar prune mask
                            mask::positive::<i>  per-crossbar sign mask
                            meta::neg_q        negation design vector

``artifact.json`` records the SHA-256 of ``arrays.npz``; :func:`load_artifact`
refuses bundles whose bytes do not match (corruption) or whose schema version
is newer than this code (forward compatibility is explicit, never silent).

The rebuilt :class:`InferenceModel` reproduces the training-time power-free
validation forward **bit-identically**: the network is reconstructed with
``calibrate=False`` (no re-randomization), every parameter is restored
in place, and inference runs the exact op sequence of
``PrintedNeuralNetwork.forward``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import logging
import os
import zipfile
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.circuits import PNCConfig, PrintedNeuralNetwork
from repro.pdk.params import PDK, ActivationKind

logger = logging.getLogger(__name__)

#: Bundle layout version; bump on incompatible changes.
ARTIFACT_SCHEMA_VERSION = 1
ARTIFACT_FORMAT = "repro-pnc-artifact"

ARRAYS_NAME = "arrays.npz"
META_NAME = "artifact.json"

#: Conventional artifact filename inside a run directory.
RUN_ARTIFACT_NAME = "model.pnz"


class ArtifactError(RuntimeError):
    """The bundle is corrupted, incomplete, or from an unknown schema."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _surrogate_meta(surrogate) -> dict | None:
    """Fit metadata of one surrogate power model (best effort)."""
    if surrogate is None:
        return None
    meta: dict = {"label": getattr(surrogate, "label", "")}
    report = getattr(surrogate, "report", None)
    if report is not None and dataclasses.is_dataclass(report):
        meta["fit"] = dataclasses.asdict(report)
    return meta


def _provenance(run_dir: str | Path | None) -> dict:
    """Manifest subset identifying the producing run (empty without a run)."""
    if run_dir is None:
        return {}
    from repro.observability.runs import load_manifest

    manifest = load_manifest(run_dir)
    return {
        "run_id": manifest.get("run_id"),
        "command": manifest.get("command"),
        "git_sha": manifest.get("git_sha"),
        "seed": manifest.get("seed"),
        "created": manifest.get("created"),
        "config": manifest.get("config", {}),
        "manifest_schema_version": manifest.get("schema_version"),
    }


def export_artifact(
    net: PrintedNeuralNetwork,
    path: str | Path,
    run_dir: str | Path | None = None,
    power_summary: dict | None = None,
) -> Path:
    """Freeze ``net`` into a verifiable ``.pnz`` bundle at ``path``.

    Parameters
    ----------
    net:
        The trained network to freeze (state dict, masks, neg_q and logit
        scale are all captured).
    path:
        Destination file; written atomically (temp file + ``os.replace``).
    run_dir:
        Optional run directory whose ``manifest.json`` supplies provenance
        (git SHA, resolved config, seed).
    power_summary:
        Optional JSON-safe training outcome (power_w, test_accuracy,
        feasibility, device count) embedded verbatim.
    """
    path = Path(path)
    config = net.config

    payload: dict[str, np.ndarray] = {}
    for name, value in net.state_dict().items():
        payload[f"param::{name}"] = value
    for index, crossbar in enumerate(net.crossbars()):
        if crossbar._keep_mask is not None:
            payload[f"mask::keep::{index}"] = crossbar._keep_mask.astype(np.uint8)
        if crossbar._positive_mask is not None:
            payload[f"mask::positive::{index}"] = crossbar._positive_mask.astype(np.uint8)
    payload["meta::neg_q"] = np.asarray(net.neg_q, dtype=np.float64)

    arrays_buffer = io.BytesIO()
    np.savez(arrays_buffer, **payload)
    arrays_bytes = arrays_buffer.getvalue()

    surrogates = {
        "activation": _surrogate_meta(
            net.activations()[0].surrogate if net.activations() else None
        ),
        "negation": _surrogate_meta(net.neg_surrogate),
    }
    meta = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "model": {
            "in_features": net.in_features,
            "out_features": net.out_features,
            "kind": config.kind.value,
            "hidden": list(config.hidden),
            "count_mode": config.count_mode,
            "power_mode": config.power_mode,
            "power_batch_limit": config.power_batch_limit,
            "signal_health_weight": config.signal_health_weight,
            "signal_health_floor": config.signal_health_floor,
            "logit_scale": net.logit_scale,
            "device_count": net.device_count(),
            "pdk": dataclasses.asdict(config.pdk),
        },
        "surrogates": surrogates,
        "power": dict(power_summary or {}),
        "provenance": _provenance(run_dir),
        "checksums": {ARRAYS_NAME: _sha256(arrays_bytes)},
    }

    tmp = path.with_suffix(path.suffix + f".tmp-{os.getpid()}")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(tmp, "w", compression=zipfile.ZIP_DEFLATED) as bundle:
        bundle.writestr(META_NAME, json.dumps(meta, indent=2, sort_keys=False) + "\n")
        bundle.writestr(ARRAYS_NAME, arrays_bytes)
    os.replace(tmp, path)
    logger.info("exported artifact %s (%d arrays, %d bytes)", path, len(payload), path.stat().st_size)
    return path


def read_metadata(path: str | Path) -> dict:
    """Parse and sanity-check ``artifact.json`` without loading the arrays."""
    path = Path(path)
    try:
        with zipfile.ZipFile(path, "r") as bundle:
            names = set(bundle.namelist())
            if META_NAME not in names or ARRAYS_NAME not in names:
                raise ArtifactError(
                    f"{path}: not a {ARTIFACT_FORMAT} bundle "
                    f"(missing {META_NAME} or {ARRAYS_NAME})"
                )
            try:
                meta = json.loads(bundle.read(META_NAME).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ArtifactError(f"{path}: unreadable {META_NAME}: {exc}") from exc
    except (OSError, zipfile.BadZipFile) as exc:
        raise ArtifactError(f"{path}: not a readable artifact bundle: {exc}") from exc
    if meta.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"{path}: unknown artifact format {meta.get('format')!r}")
    version = meta.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ArtifactError(f"{path}: invalid schema_version {version!r}")
    if version > ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: artifact schema_version {version} is newer than this "
            f"code understands (max {ARTIFACT_SCHEMA_VERSION}); refusing to guess"
        )
    return meta


def load_artifact(path: str | Path) -> "InferenceModel":
    """Verify and rebuild a frozen model as an inference-only network.

    Checks the bundle structure, schema version and the recorded SHA-256 of
    the array payload before touching any value; any mismatch raises
    :class:`ArtifactError`.  The rebuilt network is constructed with
    ``calibrate=False`` and ``power_mode="analytic"`` (no surrogates are
    required at inference time — the signal path never evaluates them), then
    every parameter, mask and calibrated scalar is restored from the bundle.
    """
    path = Path(path)
    meta = read_metadata(path)
    with zipfile.ZipFile(path, "r") as bundle:
        arrays_bytes = bundle.read(ARRAYS_NAME)
    recorded = meta.get("checksums", {}).get(ARRAYS_NAME)
    actual = _sha256(arrays_bytes)
    if recorded != actual:
        raise ArtifactError(
            f"{path}: checksum mismatch for {ARRAYS_NAME} "
            f"(recorded {recorded}, actual {actual}) — corrupted artifact"
        )
    try:
        with np.load(io.BytesIO(arrays_bytes)) as payload:
            arrays = {name: payload[name] for name in payload.files}
    except Exception as exc:
        raise ArtifactError(f"{path}: unreadable {ARRAYS_NAME}: {exc}") from exc

    model_meta = meta["model"]
    config = PNCConfig(
        kind=ActivationKind(model_meta["kind"]),
        hidden=tuple(model_meta["hidden"]),
        power_mode="analytic",
        count_mode=model_meta.get("count_mode", "straight_through"),
        power_batch_limit=int(model_meta.get("power_batch_limit", 256)),
        signal_health_weight=float(model_meta.get("signal_health_weight", 0.0)),
        signal_health_floor=float(model_meta.get("signal_health_floor", 0.0)),
        pdk=PDK(**model_meta["pdk"]),
    )
    net = PrintedNeuralNetwork(
        int(model_meta["in_features"]),
        int(model_meta["out_features"]),
        config,
        np.random.default_rng(0),
        calibrate=False,
    )

    state = {
        name[len("param::"):]: value
        for name, value in arrays.items()
        if name.startswith("param::")
    }
    try:
        net.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ArtifactError(f"{path}: state dict does not fit the declared topology: {exc}") from exc
    for index, crossbar in enumerate(net.crossbars()):
        keep = arrays.get(f"mask::keep::{index}")
        positive = arrays.get(f"mask::positive::{index}")
        if keep is not None or positive is not None:
            crossbar.set_masks(
                None if keep is None else keep.astype(bool),
                None if positive is None else positive.astype(bool),
            )
    if "meta::neg_q" in arrays:
        net.neg_q = arrays["meta::neg_q"].astype(np.float64)
    net.logit_scale = float(model_meta["logit_scale"])
    net.eval()
    return InferenceModel(net=net, meta=meta, path=path)


class InferenceModel:
    """A frozen pNC rebuilt for inference, with its artifact metadata.

    Two logits paths are exposed:

    - :meth:`eager_logits` — the natural-shape eager forward, the *identical*
      op sequence to the training-time power-free validation forward
      (``PrintedNeuralNetwork.forward``).  This is the bit-identity reference.
    - :meth:`predict` — the serving path through the fixed-shape
      :class:`~repro.serving.engine.InferenceEngine`: every row is evaluated
      at one constant micro-batch shape, so results are bitwise independent
      of how rows are grouped across requests (the property the batched
      HTTP server relies on).
    """

    def __init__(self, net: PrintedNeuralNetwork, meta: dict, path: Path | None = None):
        self.net = net
        self.meta = meta
        self.path = path
        self._engine = None

    # ------------------------------------------------------------------
    @property
    def in_features(self) -> int:
        return self.net.in_features

    @property
    def n_classes(self) -> int:
        return self.net.out_features

    @property
    def engine(self):
        """Lazily constructed fixed-shape replay engine."""
        if self._engine is None:
            from repro.serving.engine import InferenceEngine

            self._engine = InferenceEngine(self.net)
        return self._engine

    # ------------------------------------------------------------------
    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected rows of {self.in_features} features, got array of shape {x.shape}"
            )
        if not np.all(np.isfinite(x)):
            raise ValueError("feature rows must be finite")
        return x

    def eager_logits(self, x: np.ndarray) -> np.ndarray:
        """Natural-shape eager logits — the training-time validation forward."""
        from repro.autograd.tensor import Tensor, no_grad

        x = self._validate(x)
        with no_grad():
            return self.net.forward(Tensor(x)).data.copy()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Logits ``(n, n_classes)`` via the fixed-shape serving engine."""
        return self.engine.run(self._validate(x))

    def predict_labels(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(labels, confidence)`` per row: argmax class + softmax probability."""
        logits = self.predict(x)
        shifted = np.exp(logits - logits.max(axis=1, keepdims=True))
        probabilities = shifted / shifted.sum(axis=1, keepdims=True)
        labels = np.argmax(logits, axis=1)
        return labels, probabilities[np.arange(len(labels)), labels]

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-safe metadata served by the ``/model`` endpoint."""
        return {
            "format": self.meta.get("format"),
            "schema_version": self.meta.get("schema_version"),
            "created": self.meta.get("created"),
            "model": self.meta.get("model", {}),
            "power": self.meta.get("power", {}),
            "provenance": self.meta.get("provenance", {}),
            "surrogates": self.meta.get("surrogates", {}),
            "path": str(self.path) if self.path else None,
        }
