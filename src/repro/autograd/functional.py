"""Neural-network math on :class:`~repro.autograd.tensor.Tensor`.

Provides the loss functions and nonlinearities used by the paper's training
pipeline, plus the *smooth indicator* relaxations (sigmoid soft counts and
straight-through estimators) that §III-B of the paper introduces for the
device-count terms of the power model.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, constant_of


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid ``1 / (1 + exp(-x))``."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit ``max(0, x)``."""
    return x.relu()


def clipped_relu(x: Tensor, ceiling: float = 1.0) -> Tensor:
    """ReLU clipped at ``ceiling`` — matches the p-Clipped_ReLU ideal shape."""
    return x.clip(0.0, ceiling)


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """Numerically stable softplus ``log(1 + exp(beta * x)) / beta``."""
    scaled = x * beta
    # log(1 + e^s) = max(s, 0) + log(1 + e^{-|s|})
    positive = scaled.relu()
    stable = ((-(scaled.abs())).exp() + 1.0).log()
    return (positive + stable) * (1.0 / beta)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` with the max-subtraction trick."""
    shifted = logits - constant_of(lambda a: a.max(axis=axis, keepdims=True), logits)
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy loss between raw ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        ``(batch, n_classes)`` tensor of unnormalized scores.  In the pNC
        context these are the (scaled) output-neuron voltages.
    targets:
        ``(batch,)`` integer class labels (numpy array, no gradient).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits (batch, classes)")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError("targets must be 1-D and match the batch dimension")
    batch = np.arange(targets.shape[0])
    inv_n = 1.0 / targets.shape[0]
    source = logits.data

    # Fused kernel: the max-shift/exp/sum/log/pick/mean chain runs as one
    # numpy sequence (one graph node) instead of ~9 Tensor ops.  The forward
    # replicates the composed op sequence exactly; the backward uses the
    # closed form (softmax - onehot)/n.  The argmax shift and probabilities
    # are recomputed from the *current* logits array inside both closures,
    # which is what keeps the node valid under captured-graph replay.
    def fwd(a: np.ndarray) -> np.ndarray:
        shifted = a - a.max(axis=-1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        picked = (shifted - log_norm)[batch, targets]
        return -(picked.sum() * inv_n)

    def backward(g: np.ndarray):
        shifted = source - source.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        probs[batch, targets] -= 1.0
        return (probs * (g * inv_n),)

    return Tensor._make(fwd(source), (logits,), backward, fwd=fwd)


def instance_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Per-instance cross-entropy over ``(instances, batch, classes)`` logits.

    The instance-axis twin of :func:`cross_entropy`: one fused node whose
    output is an ``(instances, 1, 1)`` loss stack.  Every per-element
    operation (max-shift, exp, sum over the batch, closed-form backward)
    runs the same numpy sequence as the 2-D kernel does on each slice, so
    slice ``i`` of the result is bit-identical to
    ``cross_entropy(logits[i], targets)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 3:
        raise ValueError("instance_cross_entropy expects 3-D logits (instances, batch, classes)")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[1]:
        raise ValueError("targets must be 1-D and match the batch dimension")
    batch = np.arange(targets.shape[0])
    inv_n = 1.0 / targets.shape[0]
    source = logits.data

    def fwd(a: np.ndarray) -> np.ndarray:
        shifted = a - a.max(axis=-1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        # The fancy-indexed pick is not C-contiguous; the strided row sum
        # would skip numpy's pairwise accumulation and drift from the 2-D
        # kernel's flat sum in the last ulp.  A contiguous copy restores
        # the exact per-row pairwise order.
        picked = np.ascontiguousarray((shifted - log_norm)[:, batch, targets])
        return (-(picked.sum(axis=-1) * inv_n)).reshape(-1, 1, 1)

    def backward(g: np.ndarray):
        shifted = source - source.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=-1, keepdims=True)
        probs[:, batch, targets] -= 1.0
        return (probs * (g * inv_n),)

    return Tensor._make(fwd(source), (logits,), backward, fwd=fwd)


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error; used when fitting surrogate power models."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy in [0, 1] from logits (argmax decision)."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())


def instance_accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-instance accuracies from ``(instances, batch, classes)`` logits.

    Each instance slice is scored exactly like :func:`accuracy` on a 2-D
    logits matrix: argmax is exact, and the mean over a batch of 0/1 hits
    is an exact float64 sum, so the result is bit-identical to looping
    :func:`accuracy` over the leading axis.
    """
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=-1)
    hits = predictions == np.asarray(targets)
    return hits.mean(axis=-1)


# ----------------------------------------------------------------------
# Smooth indicator relaxations (paper §III-B)
# ----------------------------------------------------------------------

def soft_indicator(x: Tensor, sharpness: float = 10.0) -> Tensor:
    """Sigmoid relaxation of the indicator ``1_{x > 0}``.

    The paper replaces the non-differentiable ``1_{|θ| > 0}`` used in the
    activation-circuit count (Eq. 2) with ``σ(|θ|)`` so the count receives
    gradients.  ``sharpness`` controls how closely the sigmoid approximates
    the step; the paper's formulation corresponds to ``sharpness`` times the
    conductance magnitude.
    """
    return (x * sharpness).sigmoid()


def hard_indicator(x: Tensor | np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Exact indicator ``1_{x > threshold}`` (no gradient; reporting only)."""
    data = x.data if isinstance(x, Tensor) else np.asarray(x)
    return (data > threshold).astype(np.float64)


def straight_through_indicator(x: Tensor, threshold: float = 0.0, sharpness: float = 10.0) -> Tensor:
    """Indicator with straight-through gradient.

    Forward pass returns the *hard* indicator ``1_{x > threshold}`` so power
    reports stay exact, while the backward pass uses the derivative of the
    sigmoid relaxation — the "soft count for differentiability" device of the
    paper, applied in straight-through form.
    """
    soft = soft_indicator(x - threshold, sharpness=sharpness)
    # hard = soft + (hard - soft).detach(): forward value is hard, gradient is
    # soft's.  The correction is data-dependent, so it is a replayable
    # constant node rather than a frozen Tensor literal.
    correction = constant_of(
        lambda xv, sv: (xv > threshold).astype(np.float64) - sv, x, soft
    )
    return soft + correction


def row_max(x: Tensor) -> Tensor:
    """Row-wise maximum (over the output axis), as used in Eq. 2.

    For a crossbar parameter matrix ``θ`` of shape ``(M+2, N)`` the paper
    takes the per-*activation-circuit* maximum over the incoming conductance
    indicators.  Each column of ``θ`` corresponds to one output/activation
    circuit, so the reduction runs over the input axis (axis 0), producing a
    length-``N`` vector.
    """
    return x.max(axis=0)
