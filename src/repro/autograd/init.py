"""Seeded parameter initializers.

The paper initializes pNC parameters randomly per activation function and per
run (10 seeds for the baseline Pareto sweep), so all initializers take an
explicit :class:`numpy.random.Generator` for reproducibility.
"""

from __future__ import annotations

import numpy as np


def uniform(rng: np.random.Generator, shape: tuple[int, ...], low: float, high: float) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    if high <= low:
        raise ValueError("high must exceed low")
    return rng.uniform(low, high, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Gaussian initialization."""
    if std < 0:
        raise ValueError("std must be non-negative")
    return rng.normal(mean, std, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Glorot/Xavier uniform for dense weight matrices."""
    fan_in, fan_out = shape
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def surrogate_conductance(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    magnitude_low: float,
    magnitude_high: float,
    negative_fraction: float = 0.5,
) -> np.ndarray:
    """Initialize signed surrogate conductances θ for a crossbar.

    Magnitudes are drawn log-uniformly inside the printable conductance range
    and signs are flipped with probability ``negative_fraction`` — the sign of
    θ encodes whether a negation circuit precedes the resistor (paper §II-B).
    """
    if not 0.0 <= negative_fraction <= 1.0:
        raise ValueError("negative_fraction must be in [0, 1]")
    if magnitude_low <= 0 or magnitude_high <= magnitude_low:
        raise ValueError("need 0 < magnitude_low < magnitude_high")
    log_low, log_high = np.log10(magnitude_low), np.log10(magnitude_high)
    magnitudes = 10.0 ** rng.uniform(log_low, log_high, size=shape)
    signs = np.where(rng.random(shape) < negative_fraction, -1.0, 1.0)
    return magnitudes * signs
