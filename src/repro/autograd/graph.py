"""Static-graph capture & replay for the autograd engine.

Full-batch training (the paper's protocol, §IV-A) evaluates a structurally
identical computational graph every epoch — only parameter *values* change.
:class:`CapturedGraph` records one eager forward (op sequence, parent
tensors, preallocated output buffers) plus the reverse topological order of
one backward pass, then replays later epochs as a flat loop over numpy
kernels:

* **forward replay** walks the recorded schedule and recomputes each node's
  forward thunk, writing the result *into the node's existing array* (numpy
  ufuncs write via ``out=`` — buffer donation; everything else is
  ``np.copyto``).  No ``Tensor`` boxes, no closures, no topo sort are
  (re)created.
* **backward replay** reuses the closures recorded during the capture epoch
  (they reference the parent/output arrays by object, which the in-place
  forward keeps fresh) and propagates along the cached topo order via the
  same accumulation routine as eager — gradients are bit-identical.

Validity is guarded by a cheap structural fingerprint: a process-wide
*graph version* (bumped by mutations that change graph **structure**, e.g.
``CrossbarLayer.set_masks``), the objective's epoch key (e.g. the AL warmup
boundary), and the recorded leaf shapes.  Value-only changes — LR halving,
λ/μ updates, budget annealing — never invalidate a capture.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, _run_backward, _topo_order
from repro.observability.metrics import get_registry
from repro.observability.tracing import kernel_name

_REPLAY_EPOCHS = get_registry().counter(
    "graph_replay_epochs", "training epochs executed by captured-graph replay"
)
_RECAPTURE_TOTAL = get_registry().counter(
    "graph_recapture_total", "captured graphs invalidated and re-recorded mid-run"
)
_CAPTURE_FALLBACKS = get_registry().counter(
    "graph_capture_fallbacks", "capture attempts abandoned (op without a forward thunk)"
)

#: Process-wide structural version; replay is valid only while unchanged.
_GRAPH_VERSION = 0


def graph_version() -> int:
    """Current structural version of the process's tensor programs."""
    return _GRAPH_VERSION


def bump_graph_version() -> None:
    """Invalidate every captured graph (call after structural mutations)."""
    global _GRAPH_VERSION
    _GRAPH_VERSION += 1


class GraphCaptureError(RuntimeError):
    """The traced program cannot be replayed (an op lacks a forward thunk)."""


# Schedule entry modes.
_MODE_COPY = 0   # recompute, then np.copyto into the node's buffer
_MODE_UFUNC = 1  # numpy ufunc: write directly via out= (buffer donation)


class CapturedGraph:
    """One recorded tensor program, replayable into its original buffers.

    Parameters
    ----------
    outputs:
        The tensors whose values the caller reads after each replay.  The
        forward schedule is the set of their ancestors (this prunes work:
        e.g. during AL warmup the training loss does not depend on the
        power assembly, so replay skips it entirely).
    backward_root:
        Optional scalar to also record a backward pass for; its topo order
        is cached and reused by :meth:`replay_backward`.
    epoch_key:
        Opaque structural key (see ``Objective.graph_epoch_key``); replay is
        valid only for epochs with an equal key.
    """

    def __init__(
        self,
        outputs: Sequence[Tensor],
        backward_root: Tensor | None = None,
        epoch_key: object = None,
    ):
        self.outputs = tuple(outputs)
        self.epoch_key = epoch_key
        self.version = graph_version()
        self.backward_root = backward_root
        self.backward_order: list[Tensor] | None = None
        if backward_root is not None:
            self.backward_order = _topo_order(backward_root)
        self._schedule: list[tuple[int, Callable, tuple[Tensor, ...], np.ndarray]] = []
        self._kernel_names: list[str] = []
        self.n_leaves = 0
        self.n_view_nodes = 0
        self._leaf_shapes: list[tuple[Tensor, tuple[int, ...]]] = []
        self._build()

    # ------------------------------------------------------------------
    @property
    def n_ops(self) -> int:
        """Recomputed kernels per forward replay (views/aliases excluded)."""
        return len(self._schedule)

    def _build(self) -> None:
        order = self._forward_order()
        for node in order:
            preds = node._parents + node._deps
            if not preds:
                self.n_leaves += 1
                self._leaf_shapes.append((node, node.data.shape))
                continue
            fwd = node._fwd
            if fwd is None:
                _CAPTURE_FALLBACKS.inc()
                raise GraphCaptureError(
                    "captured graph contains an op without a forward thunk "
                    "(was part of the program built outside graph_capture()?)"
                )
            # Aliasing outputs (reshape/transpose views, detach) track their
            # source automatically once updates are in place — skip them.
            if any(np.shares_memory(node.data, p.data) for p in preds):
                self.n_view_nodes += 1
                continue
            mode = _MODE_COPY
            if isinstance(fwd, np.ufunc) and fwd.nin == len(preds) and fwd.nout == 1:
                try:
                    fwd(*[p.data for p in preds], out=node.data)
                    mode = _MODE_UFUNC
                except (TypeError, ValueError):  # pragma: no cover - exotic shapes
                    mode = _MODE_COPY
            self._schedule.append((mode, fwd, preds, node.data))
            self._kernel_names.append(kernel_name(fwd))

    def _forward_order(self) -> list[Tensor]:
        """Topo order (ancestors first) over ``_parents`` + ``_deps``."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(t, False) for t in self.outputs]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for pred in node._parents + node._deps:
                if id(pred) not in visited:
                    stack.append((pred, False))
        return order

    # ------------------------------------------------------------------
    def is_valid(self, epoch_key: object = None) -> bool:
        """Cheap structural fingerprint check run before every replay."""
        if self.version != graph_version():
            return False
        if epoch_key != self.epoch_key:
            return False
        for leaf, shape in self._leaf_shapes:
            if leaf.data.shape != shape:
                return False
        return True

    def kernel_names(self) -> list[str]:
        """Per-schedule-index kernel names (parallel to the forward schedule)."""
        return list(self._kernel_names)

    def backward_kernel_names(self) -> list[str]:
        """Names for the timed backward walk, indexed by reversed-topo position."""
        if self.backward_order is None:
            return []
        names: list[str] = []
        for node in reversed(self.backward_order):
            if node._backward is not None:
                base = kernel_name(node._fwd) if node._fwd is not None else "op"
                names.append(f"grad.{base}")
            else:
                names.append("accumulate")
        return names

    def replay_forward(self, timings: list[float] | None = None) -> None:
        """Re-execute the recorded kernels into the captured buffers.

        With ``timings`` (a list of length :attr:`n_ops`), one
        ``perf_counter()`` reading is taken per kernel and the full
        inter-reading interval is accumulated into ``timings[i]`` — the
        kernel's self time plus its share of loop overhead, so the totals
        account for essentially all of the replay wall time.  The kernel
        execution itself is byte-identical to the untimed path.
        """
        if timings is None:
            for mode, fwd, srcs, out in self._schedule:
                if mode == _MODE_UFUNC:
                    fwd(*[s.data for s in srcs], out=out)
                else:
                    result = fwd(*[s.data for s in srcs])
                    if result is not out:
                        np.copyto(out, result, casting="unsafe")
            return
        t_prev = perf_counter()
        for i, (mode, fwd, srcs, out) in enumerate(self._schedule):
            if mode == _MODE_UFUNC:
                fwd(*[s.data for s in srcs], out=out)
            else:
                result = fwd(*[s.data for s in srcs])
                if result is not out:
                    np.copyto(out, result, casting="unsafe")
            t_now = perf_counter()
            timings[i] += t_now - t_prev
            t_prev = t_now

    def replay_backward(self, timings: list[float] | None = None) -> None:
        """Re-run the captured backward pass along the cached topo order.

        ``timings`` works as in :meth:`replay_forward`, indexed by position
        in the reversed topo order (see :meth:`backward_kernel_names`).
        """
        root = self.backward_root
        if root is None or self.backward_order is None:
            raise RuntimeError("graph was captured without a backward root")
        _run_backward(root, self.backward_order, np.ones_like(root.data), timings)


def capture_forward(fn: Callable[..., "Tensor | Sequence[Tensor]"], *leaves: Tensor) -> CapturedGraph:
    """Record a forward-only program over fixed input buffers.

    Runs ``fn(*leaves)`` once under ``no_grad() + graph_capture()`` — replay
    structure (parents + forward thunks) is retained without any gradient
    bookkeeping — and wraps the outputs in a :class:`CapturedGraph`.  Later
    calls overwrite the leaves' arrays in place (``np.copyto``) and invoke
    :meth:`CapturedGraph.replay_forward`; the output buffers then hold the
    fresh values.  This is the inference entry point used by
    :mod:`repro.serving.engine`.
    """
    from repro.autograd.tensor import graph_capture, no_grad

    with no_grad(), graph_capture():
        outputs = fn(*leaves)
    if isinstance(outputs, Tensor):
        outputs = (outputs,)
    return CapturedGraph(tuple(outputs))


def mark_replay_epoch() -> None:
    """Count one epoch served by replay (shows up in ``repro report``)."""
    _REPLAY_EPOCHS.inc()


def mark_recapture() -> None:
    """Count one mid-run invalidation that forced a re-record."""
    _RECAPTURE_TOTAL.inc()
