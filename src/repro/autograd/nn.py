"""Module / Parameter abstractions mirroring the subset of ``torch.nn`` used.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
exposes ``parameters()`` for optimizers, and supports state-dict style
save/load so training runs can warm-start (the augmented Lagrangian loop in
the paper warm-starts θ and q between outer iterations).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.autograd import functional as F


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module.

    ``lr_scale`` multiplies the optimizer's learning rate for this parameter
    only — the lightweight equivalent of PyTorch parameter groups, used to
    slow down the physically sensitive activation parameters q relative to
    the crossbar conductances θ.
    """

    def __init__(self, data, name: str = "", lr_scale: float = 1.0):
        super().__init__(data, requires_grad=True, name=name)
        self.lr_scale = float(lr_scale)


class Module:
    """Base class for all differentiable components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; both are discovered automatically for ``parameters()`` and
    ``state_dict()``.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield every learnable parameter of this module and its children."""
        for param in self._parameters.values():
            yield param
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot all parameter values (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != np.shape(param.data):
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {np.shape(param.data)}")
            # In-place so captured-graph buffers / backward closures holding a
            # reference to the parameter's array observe the restored values.
            # (External code may have rebound .data to a numpy scalar — fall
            # back to rebinding then, nothing can hold a buffer reference.)
            if isinstance(param.data, np.ndarray):
                np.copyto(param.data, value)
            else:
                param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b`` (used by the surrogate power MLPs)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLULayer(Module):
    """Stateless ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class TanhLayer(Module):
    """Stateless tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


def mlp(
    in_features: int,
    hidden: list[int],
    out_features: int,
    rng: np.random.Generator | None = None,
    activation: type[Module] = ReLULayer,
) -> Sequential:
    """Build a standard MLP ``in -> hidden... -> out`` with the given activation.

    The paper's surrogate power models are 15-layer MLPs; :func:`mlp` lets the
    surrogate module express that directly.
    """
    rng = rng or np.random.default_rng()
    sizes = [in_features] + list(hidden)
    layers: list[Module] = []
    for a, b in zip(sizes[:-1], sizes[1:]):
        layers.append(Linear(a, b, rng=rng))
        layers.append(activation())
    layers.append(Linear(sizes[-1], out_features, rng=rng))
    return Sequential(*layers)
