"""Optimizers and learning-rate schedulers.

The paper trains with full-batch Adam at an initial learning rate of 0.1 and
halves the learning rate after 100 epochs without validation improvement
(plateau schedule).  Both pieces live here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.nn import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * getattr(param, "lr_scale", 1.0) * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) — the paper's training optimizer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            lr = self.lr * getattr(param, "lr_scale", 1.0)
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def set_lr(self, lr: float) -> None:
        """Adjust the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)


class ReduceLROnPlateau:
    """Halve the learning rate after ``patience`` epochs without improvement.

    Mirrors the paper's schedule: "halving the learning rate after 100 epochs
    without improvement on the validation set".
    """

    def __init__(
        self,
        optimizer: Adam | SGD,
        patience: int = 100,
        factor: float = 0.5,
        min_lr: float = 1e-5,
        mode: str = "max",
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.optimizer = optimizer
        self.patience = patience
        self.factor = factor
        self.min_lr = min_lr
        self.mode = mode
        self.best: float | None = None
        self.stale_epochs = 0
        self.num_reductions = 0

    def _improved(self, metric: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return metric > self.best + 1e-12
        return metric < self.best - 1e-12

    def step(self, metric: float) -> bool:
        """Record a validation metric; returns True if the LR was reduced."""
        if self._improved(metric):
            self.best = metric
            self.stale_epochs = 0
            return False
        self.stale_epochs += 1
        if self.stale_epochs >= self.patience:
            new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
            if new_lr < self.optimizer.lr:
                self.optimizer.lr = new_lr
                self.num_reductions += 1
            self.stale_epochs = 0
            return True
        return False
