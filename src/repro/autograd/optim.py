"""Optimizers and learning-rate schedulers.

The paper trains with full-batch Adam at an initial learning rate of 0.1 and
halves the learning rate after 100 epochs without validation improvement
(plateau schedule).  Both pieces live here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.autograd.nn import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * getattr(param, "lr_scale", 1.0) * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) — the paper's training optimizer.

    The default ``fused`` step flattens every parameter carrying a gradient
    into one contiguous view and runs the whole moment/bias-correction/update
    chain as ~10 vectorized numpy calls instead of ~10 *per parameter* —
    the printed networks hold dozens of tiny (often scalar) parameters, so
    the per-parameter Python dispatch dominates the step cost.  Per-element
    arithmetic order is identical to the loop implementation, so the two
    paths are bit-for-bit interchangeable (covered by tests).  Parameters
    whose gradient is ``None`` are skipped exactly as in the loop: their
    moments and data are untouched; the flat layout is rebuilt only when the
    set of gradient-carrying parameters changes (e.g. the AL warmup boundary
    pulling the power path into the loss).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = True,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.fused = fused
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Fused-layout cache: which parameters participate, their flat
        # offsets, and the flat moment buffers (per-param _m/_v entries are
        # reshaped views into these once built).
        self._fused_key: tuple[int, ...] | None = None
        self._flat: dict[str, np.ndarray] | None = None
        self._fused_params: list[Parameter] = []
        self._offsets: list[tuple[int, int]] = []

    def step(self) -> None:
        self._step_count += 1
        active = [i for i, p in enumerate(self.parameters) if p.grad is not None]
        if not active:
            return
        if self.fused:
            self._step_fused(active)
        else:
            self._step_loop(active)

    def _step_loop(self, active: list[int]) -> None:
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for i in active:
            param, m, v = self.parameters[i], self._m[i], self._v[i]
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            lr = self.lr * getattr(param, "lr_scale", 1.0)
            param.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _build_fused(self, active: list[int]) -> None:
        """(Re)build the flat layout; existing moments are carried over."""
        params = [self.parameters[i] for i in active]
        sizes = [p.data.size for p in params]
        total = int(np.sum(sizes)) if sizes else 0
        m_flat = np.empty(total, dtype=np.float64)
        v_flat = np.empty(total, dtype=np.float64)
        scale = np.empty(total, dtype=np.float64)
        offsets: list[tuple[int, int]] = []
        offset = 0
        for i, p, n in zip(active, params, sizes):
            m_flat[offset : offset + n] = self._m[i].ravel()
            v_flat[offset : offset + n] = self._v[i].ravel()
            # lr_scale may be a scalar (single-instance nets) or an array
            # broadcastable to the parameter shape (fleet training keeps one
            # learning rate per instance slice in a stacked parameter).
            lr_scale = np.asarray(getattr(p, "lr_scale", 1.0), dtype=np.float64)
            scale[offset : offset + n] = np.broadcast_to(lr_scale, p.data.shape).ravel()
            # Re-point the per-param moments at views of the flat buffers so
            # both layouts always agree (and survive future rebuilds).
            self._m[i] = m_flat[offset : offset + n].reshape(p.data.shape)
            self._v[i] = v_flat[offset : offset + n].reshape(p.data.shape)
            offsets.append((offset, n))
            offset += n
        self._flat = {
            "m": m_flat,
            "v": v_flat,
            "scale": scale,
            "g": np.empty(total, dtype=np.float64),
            "p": np.empty(total, dtype=np.float64),
        }
        self._fused_params = params
        self._offsets = offsets
        self._fused_key = tuple(active)

    def _step_fused(self, active: list[int]) -> None:
        if tuple(active) != self._fused_key:
            self._build_fused(active)
        flat = self._flat
        params, offsets = self._fused_params, self._offsets
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        grad = flat["g"]
        np.concatenate([p.grad.ravel() for p in params], out=grad)
        if self.weight_decay > 0:
            np.concatenate([p.data.ravel() for p in params], out=flat["p"])
            grad = grad + self.weight_decay * flat["p"]
        m, v = flat["m"], flat["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / bias1
        v_hat = v / bias2
        update = (self.lr * flat["scale"]) * m_hat / (np.sqrt(v_hat) + self.eps)
        for p, (offset, n) in zip(params, offsets):
            if p.data.ndim == 0:
                p.data -= update[offset]
            else:
                p.data -= update[offset : offset + n].reshape(p.data.shape)

    def set_lr(self, lr: float) -> None:
        """Adjust the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def refresh_lr_scales(self) -> None:
        """Re-read every parameter's ``lr_scale`` into the fused layout.

        Fleet training mutates per-instance ``lr_scale`` arrays in place when
        an instance's plateau scheduler fires; the flat ``scale`` buffer is a
        copy, so it must be refreshed for the next fused step.
        """
        if self._flat is None:
            return
        scale = self._flat["scale"]
        for p, (offset, n) in zip(self._fused_params, self._offsets):
            lr_scale = np.asarray(getattr(p, "lr_scale", 1.0), dtype=np.float64)
            scale[offset : offset + n] = np.broadcast_to(lr_scale, p.data.shape).ravel()


class ReduceLROnPlateau:
    """Halve the learning rate after ``patience`` epochs without improvement.

    Mirrors the paper's schedule: "halving the learning rate after 100 epochs
    without improvement on the validation set".
    """

    def __init__(
        self,
        optimizer: Adam | SGD,
        patience: int = 100,
        factor: float = 0.5,
        min_lr: float = 1e-5,
        mode: str = "max",
    ):
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.optimizer = optimizer
        self.patience = patience
        self.factor = factor
        self.min_lr = min_lr
        self.mode = mode
        self.best: float | None = None
        self.stale_epochs = 0
        self.num_reductions = 0

    def _improved(self, metric: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "max":
            return metric > self.best + 1e-12
        return metric < self.best - 1e-12

    def step(self, metric: float) -> bool:
        """Record a validation metric; returns True if the LR was reduced."""
        if self._improved(metric):
            self.best = metric
            self.stale_epochs = 0
            return False
        self.stale_epochs += 1
        if self.stale_epochs >= self.patience:
            new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
            if new_lr < self.optimizer.lr:
                self.optimizer.lr = new_lr
                self.num_reductions += 1
            self.stale_epochs = 0
            return True
        return False
