"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the training substrate of the reproduction: the paper
trains printed neuromorphic circuits with PyTorch, which is not available in
this environment, so we provide a compatible reverse-mode engine.  It exposes

- :class:`~repro.autograd.tensor.Tensor` — an ndarray wrapper that records a
  computational graph and supports broadcasting-aware backpropagation,
- :mod:`~repro.autograd.functional` — neural-network math (softmax,
  cross-entropy, activation functions, smooth indicator relaxations),
- :mod:`~repro.autograd.nn` — ``Module`` / ``Parameter`` abstractions,
- :mod:`~repro.autograd.optim` — SGD and Adam optimizers plus learning-rate
  schedulers (the paper uses full-batch Adam with plateau-halving).

The engine intentionally mirrors a small but faithful subset of the PyTorch
semantics the paper relies on: computational-graph construction on the fly,
``backward()`` accumulation into ``.grad``, ``no_grad`` contexts, and
straight-through estimators for the non-differentiable device-count
indicators.
"""

from repro.autograd.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    tensor,
    graph_capture,
    is_capturing,
    constant_of,
)
from repro.autograd import functional
from repro.autograd import nn
from repro.autograd import optim
from repro.autograd import init
from repro.autograd import graph

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "graph_capture",
    "is_capturing",
    "constant_of",
    "functional",
    "nn",
    "optim",
    "init",
    "graph",
]
