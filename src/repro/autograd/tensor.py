"""Reverse-mode autodiff tensor built on numpy.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamically built computational graph.  Calling
:meth:`Tensor.backward` walks the graph in reverse topological order and
accumulates gradients into every reachable leaf that has ``requires_grad``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``;
  they always have exactly the shape of ``Tensor.data``.
* Broadcasting is handled by :func:`unbroadcast`, which sums a gradient back
  down to the shape the operand originally had.
* A module-level switch (:func:`no_grad`) disables graph recording, matching
  the PyTorch inference idiom the paper's evaluation loops use.
* Only float64 data participates in differentiation; integer tensors may be
  created for indexing but never require gradients.

Capture & replay support
------------------------
Every op carries a *forward thunk* — a pure function from parent arrays to
the output array (``_fwd``).  Under :func:`graph_capture` each produced node
also retains its parents (even inside ``no_grad``), which lets
:class:`repro.autograd.graph.CapturedGraph` record the op sequence of one
eager epoch and replay later epochs as a flat loop over numpy kernels
writing into the *same* preallocated output buffers.  Two invariants make
replay bit-identical to eager:

* backward closures reference the parent/output ``ndarray`` *objects*, and
  replay updates those arrays in place, so the closures recorded during the
  capture epoch stay valid (closures must never cache *derived* arrays —
  see ``relu``/``clip``/``abs``/``max``, which recompute inside backward);
* values that are data-dependent but non-differentiable (branch masks,
  straight-through corrections, implicit-solve results) are wrapped in
  :func:`constant_of` nodes whose recompute function reruns at replay.
  Their inputs live in ``_deps`` — a replay-only edge list that
  :meth:`Tensor.backward` never traverses, so gradient accumulation order
  (and therefore every float) is identical with capture on or off.
"""

from __future__ import annotations

import contextlib
import threading
from time import perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_capturing() -> bool:
    """Whether ops currently retain replay structure (parents + thunks)."""
    return getattr(_GRAD_STATE, "capturing", False)


@contextlib.contextmanager
def graph_capture():
    """Record replay structure on every op created inside the block.

    Orthogonal to :func:`no_grad`: an inference forward can be captured
    (parents and forward thunks are retained) without any gradient
    bookkeeping.  Values and gradients are unaffected — capture only keeps
    extra references.
    """
    previous = is_capturing()
    _GRAD_STATE.capturing = True
    try:
        yield
    finally:
        _GRAD_STATE.capturing = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend axes and (b) stretch axes of size one.  The
    gradient of a broadcast operand is the sum of the output gradient over all
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size one.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def tensor(value, requires_grad: bool = False) -> "Tensor":
    """Create a :class:`Tensor` from any array-like value."""
    return Tensor(value, requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Module-level forward kernels (shared by eager compute and graph replay;
# the numpy ufuncs among them additionally support buffer donation via
# ``out=`` during replay).
# ----------------------------------------------------------------------

def _sigmoid_kernel(a: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(a, -500, 500)))


def _relu_kernel(a: np.ndarray) -> np.ndarray:
    return a * (a > 0)


def _topo_order(root: "Tensor") -> list["Tensor"]:
    """Reverse-topological DFS order over ``_parents`` (iterative)."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def _run_backward(
    root: "Tensor",
    order: Sequence["Tensor"],
    grad: np.ndarray,
    timings: list[float] | None = None,
) -> None:
    """Propagate ``grad`` from ``root`` along a precomputed topo ``order``.

    Shared by :meth:`Tensor.backward` (fresh order per call) and
    :class:`~repro.autograd.graph.CapturedGraph` (cached order), so replayed
    backward passes accumulate in exactly the eager order.

    With ``timings`` (len(order) floats), the inter-reading interval per
    visited node is accumulated into ``timings[i]``, ``i`` being the
    position in the reversed order — the per-kernel attribution used by
    ``repro profile --kernels``.  Skipped nodes (no gradient reached them)
    fold into the next visited kernel's interval.
    """
    grads: dict[int, np.ndarray] = {id(root): grad}
    if timings is None:
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)
        return
    t_prev = perf_counter()
    for i, node in enumerate(reversed(order)):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        if node.requires_grad and node._backward is None:
            node._accumulate(node_grad)
        if node._backward is not None:
            node._push_parent_grads(node_grad, grads)
        t_now = perf_counter()
        timings[i] += t_now - t_prev
        t_prev = t_now


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_deps", "_fwd", "name")
    __array_priority__ = 100.0  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._deps: tuple[Tensor, ...] = ()
        self._fwd: Callable[..., np.ndarray] | None = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        """Return the scalar payload of a single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() only valid for single-element tensors")

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying array (detached from the graph)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph.

        The result shares ``self``'s array, so under replay (which updates
        arrays in place) a captured detached node tracks its source with no
        recompute — it is skipped as an aliasing node by the scheduler.
        """
        out = Tensor(self.data, requires_grad=False)
        if is_capturing():
            out._deps = (self,)
            out._fwd = _identity
        return out

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        fwd: Callable[..., np.ndarray] | None = None,
    ) -> "Tensor":
        """Create a graph node if gradients are enabled and needed.

        ``fwd`` is the pure forward thunk ``fwd(*parent_arrays) -> array``
        used by graph replay; it must produce bit-identical values to the
        eager computation that produced ``data``.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        if is_capturing():
            if not requires:
                out._parents = tuple(parents)
            out._fwd = fwd
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Incoming gradient; defaults to ones (required to be omitted only
            for scalar outputs, mirroring PyTorch).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        _run_backward(self, _topo_order(self), grad)

    def _push_parent_grads(self, node_grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the local backward fn, routing parent grads via ``grads``."""
        parent_grads = self._backward(node_grad)
        if parent_grads is None:
            return
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pgrad = unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, g), fwd=np.add)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,), fwd=np.negative)

    def __sub__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, -g), fwd=np.subtract)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data
        a, b = self.data, other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g * b, g * a), fwd=np.multiply)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other_t.data
        data = a / b
        return Tensor._make(
            data, (self, other_t), lambda g: (g / b, -g * a / (b * b)), fwd=np.true_divide
        )

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self.data
        data = a**exponent
        return Tensor._make(
            data,
            (self,),
            lambda g: (g * exponent * a ** (exponent - 1),),
            fwd=lambda x: x**exponent,
        )

    def __matmul__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other_t.data
        data = a @ b

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            if a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return (g @ b.T, np.outer(a, g))
            if b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return (np.outer(g, b), a.T @ g)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (ga, gb)

        return Tensor._make(data, (self, other_t), backward, fwd=np.matmul)

    def __rmatmul__(self, other) -> "Tensor":
        return Tensor(other) @ self

    # Comparisons return plain numpy bool arrays (no gradient flows).
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        target = shape
        data = self.data.reshape(target)
        return Tensor._make(
            data, (self,), lambda g: (g.reshape(original),), fwd=lambda a: a.reshape(target)
        )

    def transpose(self, axes: Iterable[int] | None = None) -> "Tensor":
        axes_t = tuple(axes) if axes is not None else None
        data = np.transpose(self.data, axes_t)
        if axes_t is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes_t))

        def backward(g: np.ndarray):
            return (np.transpose(g, inverse),)

        return Tensor._make(data, (self,), backward, fwd=lambda a: np.transpose(a, axes_t))

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def backward(g: np.ndarray):
            out = np.zeros(shape, dtype=np.float64)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._make(data, (self,), backward, fwd=lambda a: a[index])

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, shape).copy(),)

        return Tensor._make(
            data, (self,), backward, fwd=lambda a: a.sum(axis=axis, keepdims=keepdims)
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        source = self.data

        # The argmax mask is recomputed inside backward from the *current*
        # input array, never cached — required for graph replay, where the
        # same closure runs against in-place-updated buffers.
        def backward(g: np.ndarray):
            current = source.max(axis=axis, keepdims=keepdims)
            if axis is None:
                mask = (source == current).astype(np.float64)
                mask /= mask.sum()
                return (mask * g,)
            expanded = current if keepdims else np.expand_dims(current, axis)
            mask = (source == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (mask * np.broadcast_to(g_expanded, source.shape),)

        return Tensor._make(
            data, (self,), backward, fwd=lambda a: a.max(axis=axis, keepdims=keepdims)
        )

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    # NOTE on the ops below, whose backward closure references the *output*
    # value: ``data`` must be normalized to a float64 ndarray before the
    # closure captures it.  For 0-d inputs numpy arithmetic yields an
    # immutable ``np.float64`` scalar; ``Tensor.__init__``'s asarray would
    # then allocate a fresh 0-d array for ``node.data``, and graph replay
    # (which writes into ``node.data`` in place) could never reach the
    # frozen scalar inside the closure.  Normalizing first makes the closure
    # cell *be* ``node.data``.
    def exp(self) -> "Tensor":
        data = np.asarray(np.exp(self.data), dtype=np.float64)
        return Tensor._make(data, (self,), lambda g: (g * data,), fwd=np.exp)

    def log(self) -> "Tensor":
        a = self.data
        return Tensor._make(np.log(a), (self,), lambda g: (g / a,), fwd=np.log)

    def sqrt(self) -> "Tensor":
        data = np.asarray(np.sqrt(self.data), dtype=np.float64)
        return Tensor._make(data, (self,), lambda g: (g * 0.5 / data,), fwd=np.sqrt)

    def abs(self) -> "Tensor":
        a = self.data
        return Tensor._make(
            np.abs(self.data), (self,), lambda g: (g * np.sign(a),), fwd=np.absolute
        )

    def tanh(self) -> "Tensor":
        data = np.asarray(np.tanh(self.data), dtype=np.float64)
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data * data),), fwd=np.tanh)

    def sigmoid(self) -> "Tensor":
        data = np.asarray(_sigmoid_kernel(self.data), dtype=np.float64)
        return Tensor._make(
            data, (self,), lambda g: (g * data * (1.0 - data),), fwd=_sigmoid_kernel
        )

    def relu(self) -> "Tensor":
        a = self.data
        return Tensor._make(
            _relu_kernel(a), (self,), lambda g: (g * (a > 0),), fwd=_relu_kernel
        )

    def clip(self, low: float, high: float) -> "Tensor":
        a = self.data
        data = np.clip(a, low, high)
        return Tensor._make(
            data,
            (self,),
            lambda g: (g * ((a >= low) & (a <= high)),),
            fwd=lambda x: np.clip(x, low, high),
        )

    def where(self, condition: "np.ndarray | Tensor", other: "Tensor") -> "Tensor":
        """Select ``self`` where ``condition`` else ``other``.

        ``condition`` carries no gradient.  A plain ndarray condition is
        baked into the node (static mask); a :class:`Tensor` condition is
        recorded as a replay dependency, so data-dependent masks (e.g. a
        sign test on a trained parameter) are re-evaluated on every replay.
        """
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        if isinstance(condition, Tensor):
            cond_node = condition
            data = np.where(cond_node.data != 0.0, self.data, other_t.data)

            def backward_dyn(g: np.ndarray):
                cond = cond_node.data != 0.0
                return (np.where(cond, g, 0.0), np.where(cond, 0.0, g))

            out = Tensor._make(
                data,
                (self, other_t),
                backward_dyn,
                fwd=lambda a, b, c: np.where(c != 0.0, a, b),
            )
            if is_capturing():
                out._deps = out._deps + (cond_node,)
            return out

        cond = np.asarray(condition, dtype=bool)
        data = np.where(cond, self.data, other_t.data)

        def backward(g: np.ndarray):
            return (np.where(cond, g, 0.0), np.where(cond, 0.0, g))

        return Tensor._make(
            data, (self, other_t), backward, fwd=lambda a, b: np.where(cond, a, b)
        )


def _identity(a: np.ndarray) -> np.ndarray:
    return a


def constant_of(fn: Callable[..., np.ndarray], *inputs: Tensor) -> Tensor:
    """A gradient-free node recomputed from ``inputs`` on graph replay.

    Replaces the ``Tensor(derived_numpy_value)`` idiom (straight-through
    corrections, branch masks, implicit-function solutions) wherever the
    derived value depends on tensors that change between epochs.  Outside
    capture this is exactly ``Tensor(fn(*[t.data for t in inputs]))``; under
    capture the inputs are recorded as replay-only dependencies (``_deps``),
    which the backward DFS never walks — eager gradient accumulation order
    is untouched by capture mode.
    """
    value = fn(*[t.data for t in inputs])
    out = Tensor(np.asarray(value, dtype=np.float64))
    if is_capturing():
        out._deps = tuple(inputs)
        out._fwd = fn
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    arrays = [t.data for t in tensors]
    data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        slices = []
        for i in range(len(arrays)):
            idx = [slice(None)] * g.ndim
            idx[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            slices.append(g[tuple(idx)])
        return tuple(slices)

    return Tensor._make(
        data, tuple(tensors), backward, fwd=lambda *parts: np.concatenate(parts, axis=axis)
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(
        data, tuple(tensors), backward, fwd=lambda *parts: np.stack(parts, axis=axis)
    )
