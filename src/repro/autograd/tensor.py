"""Reverse-mode autodiff tensor built on numpy.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamically built computational graph.  Calling
:meth:`Tensor.backward` walks the graph in reverse topological order and
accumulates gradients into every reachable leaf that has ``requires_grad``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``Tensor.grad``;
  they always have exactly the shape of ``Tensor.data``.
* Broadcasting is handled by :func:`unbroadcast`, which sums a gradient back
  down to the shape the operand originally had.
* A module-level switch (:func:`no_grad`) disables graph recording, matching
  the PyTorch inference idiom the paper's evaluation loops use.
* Only float64 data participates in differentiation; integer tensors may be
  created for indexing but never require gradients.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend axes and (b) stretch axes of size one.  The
    gradient of a broadcast operand is the sum of the output gradient over all
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size one.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def tensor(value, requires_grad: bool = False) -> "Tensor":
    """Create a :class:`Tensor` from any array-like value."""
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def item(self) -> float:
        """Return the scalar payload of a single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() only valid for single-element tensors")

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying array (detached from the graph)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node if gradients are enabled and needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Incoming gradient; defaults to ones (required to be omitted only
            for scalar outputs, mirroring PyTorch).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order via iterative DFS (avoids recursion limits).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Seed and propagate.
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(self, node_grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the local backward fn, routing parent grads via ``grads``."""
        parent_grads = self._backward(node_grad)
        if parent_grads is None:
            return
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            pgrad = unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, g))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data
        a, b = self.data, other_t.data
        return Tensor._make(data, (self, other_t), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other_t.data
        data = a / b
        return Tensor._make(data, (self, other_t), lambda g: (g / b, -g * a / (b * b)))

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self.data
        data = a**exponent
        return Tensor._make(data, (self,), lambda g: (g * exponent * a ** (exponent - 1),))

    def __matmul__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        a, b = self.data, other_t.data
        data = a @ b

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            if a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return (g @ b.T, np.outer(a, g))
            if b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return (np.outer(g, b), a.T @ g)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (ga, gb)

        return Tensor._make(data, (self, other_t), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return Tensor(other) @ self

    # Comparisons return plain numpy bool arrays (no gradient flows).
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)
        return Tensor._make(data, (self,), lambda g: (g.reshape(original),))

    def transpose(self, axes: Iterable[int] | None = None) -> "Tensor":
        axes_t = tuple(axes) if axes is not None else None
        data = np.transpose(self.data, axes_t)
        if axes_t is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes_t))

        def backward(g: np.ndarray):
            return (np.transpose(g, inverse),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def backward(g: np.ndarray):
            out = np.zeros(shape, dtype=np.float64)
            np.add.at(out, index, g)
            return (out,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                mask = (self.data == data).astype(np.float64)
                mask /= mask.sum()
                return (mask * g,)
            expanded = data if keepdims else np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (mask * np.broadcast_to(g_expanded, shape),)

        return Tensor._make(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        a = self.data
        return Tensor._make(np.log(a), (self,), lambda g: (g / a,))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._make(data, (self,), lambda g: (g * 0.5 / data,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data * data),))

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500)))
        return Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float64)
        return Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
        return Tensor._make(data, (self,), lambda g: (g * mask,))

    def where(self, condition: np.ndarray, other: "Tensor") -> "Tensor":
        """Select ``self`` where ``condition`` else ``other`` (cond is data)."""
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        cond = np.asarray(condition, dtype=bool)
        data = np.where(cond, self.data, other_t.data)

        def backward(g: np.ndarray):
            return (np.where(cond, g, 0.0), np.where(cond, 0.0, g))

        return Tensor._make(data, (self, other_t), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    arrays = [t.data for t in tensors]
    data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        slices = []
        for i in range(len(arrays)):
            idx = [slice(None)] * g.ndim
            idx[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            slices.append(g[tuple(idx)])
        return tuple(slices)

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tuple(tensors), backward)
