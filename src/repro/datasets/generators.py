"""Synthetic tabular dataset generators.

Each generator produces a deterministic dataset whose shape matches its UCI
namesake and whose difficulty is controlled by a class-separation parameter,
so the relative accuracy spread across the 13 benchmarks resembles the
published results.  Three families cover the benchmark suite:

- :func:`gaussian_blobs` — class-conditional Gaussians with anisotropic
  covariance and optional label noise (continuous sensor-style features),
- :func:`categorical_rule` — discrete features with a rule-based label and
  noise (tic-tac-toe / balance-scale style),
- :func:`regression_binned` — a nonlinear regression target binned into
  classes (the energy-efficiency y1/y2 benchmarks).

All generators min-max scale features to [0, 1] (crossbar input voltages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TabularDataset:
    """A classification dataset ready for pNC training.

    Attributes
    ----------
    name:
        Registry name.
    features:
        ``(n, d)`` float array scaled to [0, 1].
    labels:
        ``(n,)`` integer class labels in ``range(n_classes)``.
    n_classes:
        Number of distinct classes.
    """

    name: str
    features: np.ndarray
    labels: np.ndarray
    n_classes: int

    def __post_init__(self):
        if len(self.features) != len(self.labels):
            raise ValueError("features/labels length mismatch")
        if self.features.min() < -1e-9 or self.features.max() > 1.0 + 1e-9:
            raise ValueError("features must be scaled to [0, 1]")

    @property
    def n_samples(self) -> int:
        return len(self.labels)

    @property
    def n_features(self) -> int:
        return self.features.shape[1]


def _minmax(x: np.ndarray) -> np.ndarray:
    low = x.min(axis=0, keepdims=True)
    high = x.max(axis=0, keepdims=True)
    span = np.where(high - low < 1e-12, 1.0, high - low)
    return (x - low) / span


def gaussian_blobs(
    name: str,
    n_samples: int,
    n_features: int,
    n_classes: int,
    separation: float,
    seed: int,
    class_weights: np.ndarray | None = None,
    label_noise: float = 0.0,
) -> TabularDataset:
    """Class-conditional anisotropic Gaussians.

    ``separation`` is the distance between class means in units of the
    average within-class standard deviation; ~1 is hard, ~4 is easy.
    """
    rng = np.random.default_rng(seed)
    if class_weights is None:
        class_weights = np.full(n_classes, 1.0 / n_classes)
    class_weights = np.asarray(class_weights, dtype=np.float64)
    class_weights = class_weights / class_weights.sum()

    means = rng.normal(0.0, 1.0, size=(n_classes, n_features))
    # Normalize pairwise mean distances to the requested separation.
    centroid = means.mean(axis=0)
    spread = np.linalg.norm(means - centroid, axis=1).mean()
    means = centroid + (means - centroid) * (separation / max(spread, 1e-9))

    # Shared anisotropic covariance: random scales per axis plus rotation.
    scales = rng.uniform(0.6, 1.6, size=n_features)
    rotation, _ = np.linalg.qr(rng.normal(size=(n_features, n_features)))
    transform = rotation * scales

    counts = rng.multinomial(n_samples, class_weights)
    blocks, labels = [], []
    for cls, count in enumerate(counts):
        z = rng.normal(size=(count, n_features))
        blocks.append(means[cls] + z @ transform.T)
        labels.append(np.full(count, cls, dtype=np.int64))
    features = np.vstack(blocks)
    labels = np.concatenate(labels)
    order = rng.permutation(n_samples)
    features, labels = features[order], labels[order]

    if label_noise > 0:
        flip = rng.random(n_samples) < label_noise
        labels[flip] = rng.integers(0, n_classes, size=int(flip.sum()))

    return TabularDataset(name, _minmax(features), labels, n_classes)


def categorical_rule(
    name: str,
    n_samples: int,
    n_features: int,
    n_levels: int,
    n_classes: int,
    seed: int,
    rule_complexity: int = 3,
    label_noise: float = 0.05,
) -> TabularDataset:
    """Discrete-feature dataset labeled by a random conjunction-of-sums rule.

    Features take integer levels ``0..n_levels-1``; the label is the class of
    a weighted sum of ``rule_complexity`` random feature interactions passed
    through class-count quantiles — producing learnable but non-trivially
    separable discrete data (tic-tac-toe / balance-scale style).
    """
    rng = np.random.default_rng(seed)
    features = rng.integers(0, n_levels, size=(n_samples, n_features)).astype(np.float64)
    score = np.zeros(n_samples)
    for _ in range(rule_complexity):
        i, j = rng.integers(0, n_features, size=2)
        weight = rng.normal()
        score += weight * features[:, i] * (features[:, j] + 1.0)
    score += 0.5 * features @ rng.normal(size=n_features)
    quantiles = np.quantile(score, np.linspace(0, 1, n_classes + 1)[1:-1])
    labels = np.searchsorted(quantiles, score).astype(np.int64)
    if label_noise > 0:
        flip = rng.random(n_samples) < label_noise
        labels[flip] = rng.integers(0, n_classes, size=int(flip.sum()))
    return TabularDataset(name, _minmax(features), labels, n_classes)


def regression_binned(
    name: str,
    n_samples: int,
    n_features: int,
    n_classes: int,
    seed: int,
    nonlinearity: float = 1.0,
    noise: float = 0.1,
) -> TabularDataset:
    """Nonlinear regression surface binned into classes by quantiles.

    Mimics the energy-efficiency benchmarks, where heating/cooling loads
    (continuous responses of building geometry) are discretized into load
    classes.
    """
    rng = np.random.default_rng(seed)
    features = rng.random((n_samples, n_features))
    w1 = rng.normal(size=n_features)
    w2 = rng.normal(size=n_features)
    response = features @ w1 + nonlinearity * np.sin(2.5 * features @ w2) + noise * rng.normal(size=n_samples)
    quantiles = np.quantile(response, np.linspace(0, 1, n_classes + 1)[1:-1])
    labels = np.searchsorted(quantiles, response).astype(np.int64)
    return TabularDataset(name, _minmax(features), labels, n_classes)
