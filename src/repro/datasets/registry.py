"""Registry of the 13 benchmark datasets.

Names, shapes and class counts follow the UCI datasets used by the printed
neuromorphic papers ([13, 34, 35]); the data itself is synthesized (see the
package docstring).  Separation parameters are tuned so the easy benchmarks
(acute inflammation, iris, seeds) sit near-ceiling and the hard ones
(balance scale, tic-tac-toe, cardiotocography) pull the averages down —
reproducing the *spread* behind the paper's averaged accuracy rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.generators import (
    TabularDataset,
    gaussian_blobs,
    categorical_rule,
    regression_binned,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: shape metadata plus the generator closure."""

    name: str
    n_samples: int
    n_features: int
    n_classes: int
    generator: Callable[[], TabularDataset]


def _spec(
    name: str,
    n_samples: int,
    n_features: int,
    n_classes: int,
    builder: Callable[..., TabularDataset],
    **kwargs,
) -> DatasetSpec:
    def make() -> TabularDataset:
        return builder(name, n_samples, n_features, n_classes=n_classes, **kwargs)

    return DatasetSpec(name, n_samples, n_features, n_classes, make)


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


# The 13 benchmarks.  Seeds are fixed per dataset for determinism.
_register(_spec("acute_inflammation", 120, 6, 2, gaussian_blobs, separation=4.5, seed=101))
_register(_spec("balance_scale", 625, 4, 3, categorical_rule, n_levels=5, seed=102,
                rule_complexity=2, label_noise=0.08))
_register(_spec("breast_cancer_wisc", 699, 9, 2, gaussian_blobs, separation=3.2, seed=103,
                class_weights=[0.655, 0.345], label_noise=0.02))
_register(_spec("cardiotocography", 2126, 21, 3, gaussian_blobs, separation=2.0, seed=104,
                class_weights=[0.78, 0.14, 0.08], label_noise=0.05))
_register(_spec("energy_y1", 768, 8, 3, regression_binned, seed=105, nonlinearity=0.8, noise=0.08))
_register(_spec("energy_y2", 768, 8, 3, regression_binned, seed=106, nonlinearity=1.2, noise=0.12))
_register(_spec("iris", 150, 4, 3, gaussian_blobs, separation=3.6, seed=107))
_register(_spec("mammographic", 961, 5, 2, gaussian_blobs, separation=2.2, seed=108, label_noise=0.08))
_register(_spec("pendigits", 10992, 16, 10, gaussian_blobs, separation=3.4, seed=109, label_noise=0.01))
_register(_spec("seeds", 210, 7, 3, gaussian_blobs, separation=3.0, seed=110))
_register(_spec("tic_tac_toe", 958, 9, 2, categorical_rule, n_levels=3, seed=111,
                rule_complexity=4, label_noise=0.06))
_register(_spec("vertebral_2c", 310, 6, 2, gaussian_blobs, separation=2.6, seed=112, label_noise=0.05))
_register(_spec("vertebral_3c", 310, 6, 3, gaussian_blobs, separation=2.4, seed=113, label_noise=0.05))

#: Canonical benchmark order (the 13 datasets of the evaluation).
DATASET_NAMES: tuple[str, ...] = tuple(_REGISTRY)

_CACHE: dict[str, TabularDataset] = {}


def load_dataset(name: str) -> TabularDataset:
    """Load (and memoize) one benchmark dataset by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}")
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY[name].generator()
    return _CACHE[name]


def dataset_info(name: str) -> DatasetSpec:
    """Shape metadata for one dataset without generating it."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}")
    return _REGISTRY[name]


def all_datasets() -> list[TabularDataset]:
    """Load the full 13-dataset benchmark suite."""
    return [load_dataset(name) for name in DATASET_NAMES]
