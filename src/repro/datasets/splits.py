"""Train / validation / test splitting (paper: 60 / 20 / 20).

Splits are stratified by class so small datasets keep every class present in
every partition, and deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generators import TabularDataset


@dataclass
class DataSplit:
    """The three partitions of one dataset."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_val: np.ndarray
    y_val: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (len(self.y_train), len(self.y_val), len(self.y_test))


def train_val_test_split(
    dataset: TabularDataset,
    fractions: tuple[float, float, float] = (0.6, 0.2, 0.2),
    seed: int = 0,
) -> DataSplit:
    """Stratified 60/20/20 split (fractions configurable)."""
    f_train, f_val, f_test = fractions
    if abs(f_train + f_val + f_test - 1.0) > 1e-9:
        raise ValueError("split fractions must sum to 1")
    rng = np.random.default_rng(seed)
    train_idx: list[np.ndarray] = []
    val_idx: list[np.ndarray] = []
    test_idx: list[np.ndarray] = []
    for cls in range(dataset.n_classes):
        members = np.flatnonzero(dataset.labels == cls)
        members = rng.permutation(members)
        n = len(members)
        n_train = max(1, int(round(f_train * n)))
        n_val = max(1, int(round(f_val * n)))
        n_train = min(n_train, n - 2) if n >= 3 else n_train
        train_idx.append(members[:n_train])
        val_idx.append(members[n_train:n_train + n_val])
        test_idx.append(members[n_train + n_val:])
    tr = rng.permutation(np.concatenate(train_idx))
    va = rng.permutation(np.concatenate(val_idx))
    te = rng.permutation(np.concatenate(test_idx))
    x, y = dataset.features, dataset.labels
    return DataSplit(x[tr], y[tr], x[va], y[va], x[te], y[te])
