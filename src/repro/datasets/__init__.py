"""The 13 benchmark classification datasets (synthetic equivalents).

The paper evaluates on 13 tabular benchmark datasets used across the printed
neuromorphic literature [13, 34, 35] (UCI-derived).  Network access is not
available in this environment, so :mod:`repro.datasets.generators` provides
deterministic synthetic generators that match each dataset's dimensions
(#samples, #features, #classes) and approximate difficulty profile, and
:mod:`repro.datasets.registry` registers them under the usual names.  All
features are min-max scaled into the crossbar input voltage range [0, 1] —
exactly the preprocessing printed classifiers require, since features enter
the circuit as voltages.
"""

from repro.datasets.registry import DATASET_NAMES, load_dataset, dataset_info, all_datasets
from repro.datasets.splits import train_val_test_split, DataSplit
from repro.datasets.generators import TabularDataset

__all__ = [
    "DATASET_NAMES",
    "load_dataset",
    "dataset_info",
    "all_datasets",
    "train_val_test_split",
    "DataSplit",
    "TabularDataset",
]
