"""ASCII figure emitters.

Terminal-friendly renderings of the paper's figures: a scatter canvas for
Fig. 4 (accuracy vs power with budget threshold lines), a curve/point
overlay for Fig. 5 (Pareto front vs AL optima), and line plots for the
Fig. 3(c–f) power-vs-voltage behaviours.  These exist so benchmark runs
produce inspectable artifacts without any plotting dependency.
"""

from __future__ import annotations

import numpy as np


class AsciiCanvas:
    """Fixed-size character canvas with data-coordinate plotting."""

    def __init__(
        self,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        width: int = 72,
        height: int = 20,
    ):
        if x_range[1] <= x_range[0] or y_range[1] <= y_range[0]:
            raise ValueError("ranges must be increasing")
        self.x_range = x_range
        self.y_range = y_range
        self.width = width
        self.height = height
        self.cells = [[" "] * width for _ in range(height)]

    def _to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        fx = (x - self.x_range[0]) / (self.x_range[1] - self.x_range[0])
        fy = (y - self.y_range[0]) / (self.y_range[1] - self.y_range[0])
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            return None
        col = min(self.width - 1, int(fx * (self.width - 1)))
        row = min(self.height - 1, int((1.0 - fy) * (self.height - 1)))
        return row, col

    def point(self, x: float, y: float, marker: str) -> None:
        cell = self._to_cell(x, y)
        if cell is not None:
            row, col = cell
            self.cells[row][col] = marker

    def hline(self, y: float, marker: str = "-") -> None:
        cell = self._to_cell(self.x_range[0], y)
        if cell is None:
            return
        row, _ = cell
        for col in range(self.width):
            if self.cells[row][col] == " ":
                self.cells[row][col] = marker

    def curve(self, xs: np.ndarray, ys: np.ndarray, marker: str = "*") -> None:
        for x, y in zip(xs, ys):
            self.point(float(x), float(y), marker)

    def render(self, x_label: str = "", y_label: str = "") -> str:
        border = "+" + "-" * self.width + "+"
        body = [border]
        for row in self.cells:
            body.append("|" + "".join(row) + "|")
        body.append(border)
        footer = (
            f"x: {self.x_range[0]:g}..{self.x_range[1]:g} {x_label}   "
            f"y: {self.y_range[0]:g}..{self.y_range[1]:g} {y_label}"
        )
        body.append(footer)
        return "\n".join(body)


#: Marker per activation kind, mirroring Fig. 4's legend
#: (circle / square / triangle / star).
FIG4_MARKERS = {
    "p-ReLU": "o",
    "p-Clipped_ReLU": "#",
    "p-sigmoid": "^",
    "p-tanh": "*",
}


def fig4_canvas(
    points: list[tuple[float, float, str]],
    budget_lines_mw: list[float],
    accuracy_range: tuple[float, float] = (30.0, 100.0),
    power_range_mw: tuple[float, float] | None = None,
) -> str:
    """Fig. 4: accuracy (x, %) vs power (y, mW) scatter with budget lines.

    ``points`` contains (accuracy_pct, power_mw, kind_name) triples.
    """
    if power_range_mw is None:
        top = max([p for _, p, _ in points] + budget_lines_mw) * 1.1 if points else 1.0
        power_range_mw = (0.0, max(top, 1e-6))
    canvas = AsciiCanvas(accuracy_range, power_range_mw)
    for budget in budget_lines_mw:
        canvas.hline(budget, marker=".")
    for accuracy, power, kind_name in points:
        canvas.point(accuracy, power, FIG4_MARKERS.get(kind_name, "x"))
    return canvas.render(x_label="accuracy %", y_label="power mW")


def fig5_canvas(
    front: np.ndarray,
    al_points: np.ndarray,
    budgets_mw: list[float],
) -> str:
    """Fig. 5: baseline Pareto front (``~``) vs AL optima (``D``)."""
    all_power = list(front[:, 1] * 1e3) + list(al_points[:, 1] * 1e3) + budgets_mw
    power_top = max(all_power) * 1.15 if all_power else 1.0
    canvas = AsciiCanvas((0.0, 100.0), (0.0, power_top))
    for budget in budgets_mw:
        canvas.hline(budget, marker=".")
    canvas.curve(front[:, 0] * 100.0, front[:, 1] * 1e3, marker="~")
    canvas.curve(al_points[:, 0] * 100.0, al_points[:, 1] * 1e3, marker="D")
    return canvas.render(x_label="accuracy %", y_label="power mW")


def fig3_power_curve(v_grid: np.ndarray, powers_w: np.ndarray, title: str) -> str:
    """Fig. 3(c–f) bottom panels: AF power vs input voltage."""
    powers_uw = np.asarray(powers_w) * 1e6
    top = float(powers_uw.max()) * 1.1 + 1e-9
    canvas = AsciiCanvas((float(v_grid.min()), float(v_grid.max())), (0.0, top), height=12)
    canvas.curve(np.asarray(v_grid), powers_uw, marker="*")
    return f"{title}\n" + canvas.render(x_label="V_in (V)", y_label="power uW")
