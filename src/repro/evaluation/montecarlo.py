"""Monte-Carlo robustness analysis of trained printed circuits.

Printing scatters every component (see :mod:`repro.pdk.variation`); a design
that only works at the nominal corner is not manufacturable.  This module
samples printed instances of a trained :class:`PrintedNeuralNetwork`,
re-evaluates accuracy and power per instance, and reports distributional
statistics plus *parametric yield*: the fraction of instances that both stay
within the power budget and clear an accuracy floor.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional as F
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.pdk.variation import VariationSpec, perturb_q, perturb_theta, perturb_model_card

logger = logging.getLogger(__name__)


@dataclass
class MonteCarloReport:
    """Result of a variation analysis run."""

    accuracies: np.ndarray
    powers: np.ndarray
    nominal_accuracy: float
    nominal_power: float
    power_budget: float | None
    accuracy_floor: float

    @property
    def n_samples(self) -> int:
        return len(self.accuracies)

    @property
    def accuracy_mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def accuracy_std(self) -> float:
        return float(self.accuracies.std())

    @property
    def power_mean(self) -> float:
        return float(self.powers.mean())

    @property
    def power_std(self) -> float:
        return float(self.powers.std())

    def quantile(self, q: float, what: str = "accuracy") -> float:
        values = self.accuracies if what == "accuracy" else self.powers
        return float(np.quantile(values, q))

    @property
    def parametric_yield(self) -> float:
        """Fraction of instances meeting both the budget and the floor."""
        ok = self.accuracies >= self.accuracy_floor
        if self.power_budget is not None:
            ok &= self.powers <= self.power_budget
        return float(ok.mean())

    def summary(self) -> str:
        lines = [
            f"Monte-Carlo over {self.n_samples} printed instances",
            f"  nominal: acc {self.nominal_accuracy * 100:.2f}%, power {self.nominal_power * 1e3:.4f} mW",
            f"  accuracy: mean {self.accuracy_mean * 100:.2f}% ± {self.accuracy_std * 100:.2f}, "
            f"p5 {self.quantile(0.05) * 100:.2f}%",
            f"  power   : mean {self.power_mean * 1e3:.4f} mW ± {self.power_std * 1e3:.4f}, "
            f"p95 {self.quantile(0.95, 'power') * 1e3:.4f} mW",
        ]
        if self.power_budget is not None:
            lines.append(f"  budget  : {self.power_budget * 1e3:.4f} mW")
        lines.append(
            f"  yield   : {self.parametric_yield * 100:.1f}% "
            f"(acc ≥ {self.accuracy_floor * 100:.0f}%"
            + (", power ≤ budget)" if self.power_budget is not None else ")")
        )
        return "\n".join(lines)


def picklable_network(net: PrintedNeuralNetwork) -> PrintedNeuralNetwork:
    """Prepare ``net`` for shipping to worker processes (in place).

    After a grad-enabled forward the network caches graph tensors
    (``signal_health``, ``soft_device_count``) whose backward closures are
    unpicklable; reset them to leaves.  Parameters and buffers are plain
    arrays and pickle fine.  Returns ``net`` for chaining.
    """
    net.signal_health = Tensor(0.0)
    net.soft_device_count = Tensor(0.0)
    return net


def evaluate_instances(
    net: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    spec: VariationSpec,
    rngs: list[np.random.Generator],
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one printed instance of ``net`` per generator in ``rngs``.

    The worker-side core of the Monte-Carlo loop: each instance perturbs
    crossbar conductances, activation-circuit parameters and the shared EGT
    model card with *its own* generator, so results depend only on the
    per-instance seed — not on which process or chunk evaluates it.  The
    network is restored to its entry state before returning.
    """
    state = net.state_dict()
    x_t = Tensor(x)
    threshold = net.config.pdk.prune_threshold_us
    accuracies = np.empty(len(rngs))
    powers = np.empty(len(rngs))
    nominal_models = [activation.transfer.model for activation in net.activations()]
    try:
        for sample, rng in enumerate(rngs):
            net.load_state_dict(state)
            for crossbar in net.crossbars():
                crossbar.theta.data = perturb_theta(
                    crossbar.theta.data, spec, rng, prune_threshold=threshold
                )
            for activation, nominal_model in zip(net.activations(), nominal_models):
                varied_q = perturb_q(activation.q_values(), activation.space, spec, rng)
                # set_q clips into the design-space box; printing can land
                # slightly outside, which the box mapping saturates — an
                # acceptable approximation for bounded sigmas.
                activation.set_q(varied_q)
                activation.transfer.model = perturb_model_card(nominal_model, spec, rng)
            with no_grad():
                logits, breakdown = net.forward_with_power(x_t)
            accuracies[sample] = F.accuracy(logits, y)
            powers[sample] = float(breakdown.total.data)
    finally:
        net.load_state_dict(state)
        for activation, nominal_model in zip(net.activations(), nominal_models):
            activation.transfer.model = nominal_model
    return accuracies, powers


def run_monte_carlo(
    net: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    spec: VariationSpec,
    n_samples: int = 100,
    seed: int = 0,
    power_budget: float | None = None,
    accuracy_floor: float = 0.0,
    n_jobs: int = 1,
    progress=None,
    on_error: str = "continue",
) -> MonteCarloReport:
    """Sample ``n_samples`` printed instances of ``net`` and evaluate each.

    The network's parameters are perturbed in place per instance and restored
    afterwards; the caller's ``net`` is untouched on return.  Each instance
    perturbs crossbar conductances, activation-circuit parameters, and the
    shared EGT model card.

    Each instance draws from its own generator spawned from one
    ``SeedSequence(seed)``, so the report is identical for any ``n_jobs``
    and any chunking of instances across worker processes.
    """
    x_t = Tensor(x)
    logger.info("monte carlo: %d printed instances, seed %d, %d jobs", n_samples, seed, n_jobs)

    with no_grad():
        logits, breakdown = net.forward_with_power(x_t)
    nominal_accuracy = F.accuracy(logits, y)
    nominal_power = float(breakdown.total.data)

    seed_seqs = np.random.SeedSequence(seed).spawn(n_samples)
    if n_jobs <= 1:
        rngs = [np.random.default_rng(ss) for ss in seed_seqs]
        accuracies, powers = evaluate_instances(net, x, y, spec, rngs)
    else:
        from repro.parallel import MonteCarloChunkTask, collect_values, map_tasks

        payload = picklable_network(net)
        chunk = max(1, -(-n_samples // n_jobs))  # ceil division
        tasks = [
            MonteCarloChunkTask(
                net=payload,
                x=x,
                y=y,
                variation=spec,
                seed_seqs=tuple(seed_seqs[start:start + chunk]),
                start=start,
            )
            for start in range(0, n_samples, chunk)
        ]
        chunks = collect_values(
            map_tasks(tasks, n_jobs=n_jobs, progress=progress, on_error=on_error)
        )
        accuracies = np.concatenate([acc for acc, _ in chunks])
        powers = np.concatenate([pow_ for _, pow_ in chunks])

    return MonteCarloReport(
        accuracies=accuracies,
        powers=powers,
        nominal_accuracy=nominal_accuracy,
        nominal_power=nominal_power,
        power_budget=power_budget,
        accuracy_floor=accuracy_floor,
    )
