"""Monte-Carlo robustness analysis of trained printed circuits.

Printing scatters every component (see :mod:`repro.pdk.variation`); a design
that only works at the nominal corner is not manufacturable.  This module
samples printed instances of a trained :class:`PrintedNeuralNetwork`,
re-evaluates accuracy and power per instance, and reports distributional
statistics plus *parametric yield*: the fraction of instances that both stay
within the power budget and clear an accuracy floor.

Two execution paths produce bit-identical per-instance results:

- the serial loop (:func:`evaluate_instances`) — one eager forward per
  instance, perturbing the network in place;
- the vectorized engine (:func:`evaluate_instances_vectorized`) — instances
  stacked on a leading axis and evaluated in fixed-shape chunks by the
  captured-graph :class:`~repro.circuits.ensemble.EnsembleProgram`.

Both compose with the process pool (``n_jobs``): workers shard *chunks of
instances*, and because every instance draws from its own pre-spawned
``SeedSequence``, the report does not depend on chunking, job count, or
which path evaluated an instance.
"""

from __future__ import annotations

import hashlib
import logging
import time
from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional as F
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.observability.metrics import get_registry
from repro.observability.tracing import trace_span
from repro.pdk.variation import VariationSpec, perturb_q, perturb_theta, perturb_model_card

logger = logging.getLogger(__name__)

_MC_INSTANCES = get_registry().counter(
    "montecarlo_instances_total", "Monte-Carlo printed instances evaluated"
)
_MC_CHUNK_SECONDS = get_registry().histogram(
    "montecarlo_chunk_seconds", "wall time per evaluated Monte-Carlo chunk"
)


def _record_chunk(
    run_logger,
    instances: int,
    duration_s: float,
    vectorized: bool,
    chunk_index: int,
    start: int,
) -> None:
    """Count one evaluated chunk in metrics and (optionally) the run log."""
    _MC_INSTANCES.inc(instances)
    _MC_CHUNK_SECONDS.observe(duration_s)
    if run_logger is not None:
        run_logger.emit(
            "montecarlo",
            instances=int(instances),
            duration_s=float(duration_s),
            vectorized=bool(vectorized),
            chunk_index=int(chunk_index),
            start=int(start),
        )


@dataclass
class MonteCarloReport:
    """Result of a variation analysis run."""

    accuracies: np.ndarray
    powers: np.ndarray
    nominal_accuracy: float
    nominal_power: float
    power_budget: float | None
    accuracy_floor: float

    @property
    def n_samples(self) -> int:
        return len(self.accuracies)

    @property
    def accuracy_mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def accuracy_std(self) -> float:
        return float(self.accuracies.std())

    @property
    def power_mean(self) -> float:
        return float(self.powers.mean())

    @property
    def power_std(self) -> float:
        return float(self.powers.std())

    def quantile(self, q: float, what: str = "accuracy") -> float:
        values = self.accuracies if what == "accuracy" else self.powers
        if len(values) == 0:
            raise ValueError(
                f"cannot take a {what} quantile of an empty Monte-Carlo report "
                "(no instances were evaluated)"
            )
        return float(np.quantile(values, q))

    @property
    def parametric_yield(self) -> float:
        """Fraction of instances meeting both the budget and the floor.

        NaN-poisoned instances (e.g. from a crashed worker whose slots were
        never filled) compare false and therefore count as failures; an
        empty report yields 0.0.
        """
        if len(self.accuracies) == 0:
            return 0.0
        ok = self.accuracies >= self.accuracy_floor
        if self.power_budget is not None:
            ok &= self.powers <= self.power_budget
        return float(ok.mean())

    def summary(self) -> str:
        lines = [
            f"Monte-Carlo over {self.n_samples} printed instances",
            f"  nominal: acc {self.nominal_accuracy * 100:.2f}%, power {self.nominal_power * 1e3:.4f} mW",
            f"  accuracy: mean {self.accuracy_mean * 100:.2f}% ± {self.accuracy_std * 100:.2f}, "
            f"p5 {self.quantile(0.05) * 100:.2f}%",
            f"  power   : mean {self.power_mean * 1e3:.4f} mW ± {self.power_std * 1e3:.4f}, "
            f"p95 {self.quantile(0.95, 'power') * 1e3:.4f} mW",
        ]
        if self.power_budget is not None:
            lines.append(f"  budget  : {self.power_budget * 1e3:.4f} mW")
        lines.append(
            f"  yield   : {self.parametric_yield * 100:.1f}% "
            f"(acc ≥ {self.accuracy_floor * 100:.0f}%"
            + (", power ≤ budget)" if self.power_budget is not None else ")")
        )
        return "\n".join(lines)


#: Single-slot cache of the last (fingerprint, EnsembleProgram) built by
#: :func:`evaluate_instances_vectorized`.  Capturing the stacked graph is the
#: dominant one-time cost of the vectorized path (the eager capture forward
#: allocates every intermediate it records), so repeated runs against the same
#: network state — the CLI's single-net loop, warm benchmark iterations, pool
#: workers evaluating several chunk tasks — must not pay it again.  Matching
#: is by content fingerprint, not object identity: two unpickled copies of the
#: same network hash equal and can share one program (the program carries its
#: own parameter/base-θ copies, so results stay bit-identical).  One slot
#: bounds retained memory; a new fingerprint simply rebuilds.
_PROGRAM_CACHE: tuple | None = None


def _program_fingerprint(net: PrintedNeuralNetwork, x: np.ndarray, chunk: int) -> str:
    """Hash of everything an :class:`EnsembleProgram` bakes in at build time.

    ``state_dict`` covers only the learnable parameters (θ and the activation
    u's); the fine-tuning masks, negation design, logit scale, per-activation
    EGT model cards, the config and the training flag all shape the captured
    computation too and are hashed explicitly.  Any mismatch — masks installed,
    θ trained further, a different input matrix or chunk size — invalidates the
    cached program.
    """
    h = hashlib.sha1()
    digest = h.update

    def _arr(a: np.ndarray) -> None:
        digest(str(a.shape).encode())
        digest(np.ascontiguousarray(a).tobytes())

    digest(f"chunk={int(chunk)};training={bool(net.training)};".encode())
    digest(repr(net.config).encode())
    _arr(np.asarray(x))
    for name, value in sorted(net.state_dict().items()):
        digest(name.encode())
        _arr(value)
    for crossbar in net.crossbars():
        for mask in (crossbar._keep_mask, crossbar._positive_mask):
            digest(b"none" if mask is None else np.packbits(mask).tobytes())
    _arr(np.asarray(net.neg_q))
    digest(repr(float(net.logit_scale)).encode())
    for activation in net.activations():
        card = activation.transfer.model
        digest(repr((card.vth, card.k, card.n, card.phi)).encode())
    return h.hexdigest()


def _cached_program(net: PrintedNeuralNetwork, x: np.ndarray, chunk: int):
    """Return a cached :class:`EnsembleProgram` for ``net`` or build one."""
    global _PROGRAM_CACHE
    from repro.circuits.ensemble import EnsembleProgram

    fingerprint = _program_fingerprint(net, x, chunk)
    if _PROGRAM_CACHE is not None and _PROGRAM_CACHE[0] == fingerprint:
        return _PROGRAM_CACHE[1]
    program = EnsembleProgram(net, x, chunk)
    _PROGRAM_CACHE = (fingerprint, program)
    return program


def picklable_network(net: PrintedNeuralNetwork) -> PrintedNeuralNetwork:
    """Prepare ``net`` for shipping to worker processes (in place).

    After a grad-enabled forward the network caches graph tensors
    (``signal_health``, ``soft_device_count``) whose backward closures are
    unpicklable; reset them to leaves.  Parameters and buffers are plain
    arrays and pickle fine.  Returns ``net`` for chaining.
    """
    net.signal_health = Tensor(0.0)
    net.soft_device_count = Tensor(0.0)
    return net


def evaluate_instances(
    net: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    spec: VariationSpec,
    rngs: list[np.random.Generator],
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one printed instance of ``net`` per generator in ``rngs``.

    The worker-side core of the Monte-Carlo loop: each instance perturbs
    crossbar conductances, activation-circuit parameters and the shared EGT
    model card with *its own* generator, so results depend only on the
    per-instance seed — not on which process or chunk evaluates it.  The
    network is restored to its entry state before returning.

    The keep/positive masks are shared across instances (only the variation
    draws differ), so the masked effective θ is materialized **once** per
    crossbar and the per-instance perturbation is applied to that base —
    observable via the ``effective_theta_computes`` counter, which ticks
    ``n_layers`` times per call instead of ``n_layers × n_instances``.
    Perturbing the effective θ is bitwise equal to masking the perturbed raw
    θ: noise is drawn full-shape either way, ``|θ·noise|`` shares magnitude
    bits with ``|θ|·noise``, and keep-masked zeros never exceed the prune
    threshold so they never vary.
    """
    state = net.state_dict()
    x_t = Tensor(x)
    threshold = net.config.pdk.prune_threshold_us
    accuracies = np.empty(len(rngs))
    powers = np.empty(len(rngs))
    nominal_models = [activation.transfer.model for activation in net.activations()]
    base_thetas = [crossbar.effective_theta().data.copy() for crossbar in net.crossbars()]
    try:
        for sample, rng in enumerate(rngs):
            net.load_state_dict(state)
            thetas = [
                Tensor(perturb_theta(base, spec, rng, prune_threshold=threshold))
                for base in base_thetas
            ]
            for activation, nominal_model in zip(net.activations(), nominal_models):
                varied_q = perturb_q(activation.q_values(), activation.space, spec, rng)
                # set_q clips into the design-space box; printing can land
                # slightly outside, which the box mapping saturates — an
                # acceptable approximation for bounded sigmas.
                activation.set_q(varied_q)
                activation.transfer.model = perturb_model_card(nominal_model, spec, rng)
            with no_grad():
                logits, breakdown = net.forward_with_power(x_t, thetas=thetas)
            accuracies[sample] = F.accuracy(logits, y)
            powers[sample] = float(breakdown.total.data)
    finally:
        net.load_state_dict(state)
        for activation, nominal_model in zip(net.activations(), nominal_models):
            activation.transfer.model = nominal_model
    return accuracies, powers


def evaluate_instances_vectorized(
    net: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    spec: VariationSpec,
    rngs: list[np.random.Generator],
    instance_chunk: int = 64,
    run_logger=None,
    start: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Instance-stacked twin of :func:`evaluate_instances`.

    Builds one fixed-shape :class:`~repro.circuits.ensemble.EnsembleProgram`
    of ``min(instance_chunk, n)`` instances and streams the generators
    through it chunk by chunk; a short tail chunk is padded with the nominal
    base instance and only its real slots are read back.  Per-instance
    accuracies and powers are bit-identical to the serial loop for any
    chunk size (grouping invariance, like the serving engine).

    The program is reused across calls through a fingerprint-keyed cache
    (see :data:`_PROGRAM_CACHE`): building it replays an eager capture
    forward whose cost dwarfs a chunk's replay, so warm calls against an
    unchanged network skip straight to load/run.

    ``start`` offsets the ``start`` field of emitted chunk events so pool
    workers report global instance positions.
    """
    from repro.circuits.ensemble import sample_instance_stack

    if instance_chunk < 1:
        raise ValueError("instance_chunk must be positive")
    n = len(rngs)
    accuracies = np.empty(n)
    powers = np.empty(n)
    if n == 0:
        return accuracies, powers
    chunk = min(instance_chunk, n)
    program = _cached_program(net, x, chunk)
    base_thetas = program._base_thetas
    for chunk_index, chunk_start in enumerate(range(0, n, chunk)):
        t0 = time.perf_counter()
        with trace_span(
            "montecarlo.chunk",
            "montecarlo",
            args={"chunk_index": chunk_index, "start": start + chunk_start},
        ):
            chunk_rngs = rngs[chunk_start:chunk_start + chunk]
            stack = sample_instance_stack(net, spec, chunk_rngs, base_thetas=base_thetas)
            k = program.load(stack)
            logits, total = program.run()
            accuracies[chunk_start:chunk_start + k] = F.instance_accuracy(logits[:k], y)
            powers[chunk_start:chunk_start + k] = total[:k]
        _record_chunk(
            run_logger,
            instances=k,
            duration_s=time.perf_counter() - t0,
            vectorized=True,
            chunk_index=chunk_index,
            start=start + chunk_start,
        )
    return accuracies, powers


def run_monte_carlo(
    net: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    spec: VariationSpec,
    n_samples: int = 100,
    seed: int = 0,
    power_budget: float | None = None,
    accuracy_floor: float = 0.0,
    n_jobs: int = 1,
    progress=None,
    on_error: str = "continue",
    vectorized: bool = False,
    instance_chunk: int = 64,
    run_logger=None,
) -> MonteCarloReport:
    """Sample ``n_samples`` printed instances of ``net`` and evaluate each.

    The network's parameters are perturbed in place per instance and restored
    afterwards; the caller's ``net`` is untouched on return.  Each instance
    perturbs crossbar conductances, activation-circuit parameters, and the
    shared EGT model card.

    Each instance draws from its own generator spawned from one
    ``SeedSequence(seed)``, so the report is identical for any ``n_jobs``,
    any chunking of instances across worker processes, and either execution
    path (``vectorized=True`` stacks ``instance_chunk`` instances per
    captured-graph replay; the default loops them serially).
    """
    x_t = Tensor(x)
    logger.info(
        "monte carlo: %d printed instances, seed %d, %d jobs%s",
        n_samples, seed, n_jobs, ", vectorized" if vectorized else "",
    )

    with no_grad():
        logits, breakdown = net.forward_with_power(x_t)
    nominal_accuracy = F.accuracy(logits, y)
    nominal_power = float(breakdown.total.data)

    seed_seqs = np.random.SeedSequence(seed).spawn(n_samples)
    if n_jobs <= 1:
        rngs = [np.random.default_rng(ss) for ss in seed_seqs]
        if vectorized:
            accuracies, powers = evaluate_instances_vectorized(
                net, x, y, spec, rngs,
                instance_chunk=instance_chunk, run_logger=run_logger,
            )
        else:
            t0 = time.perf_counter()
            with trace_span("montecarlo.serial", "montecarlo", args={"instances": len(rngs)}):
                accuracies, powers = evaluate_instances(net, x, y, spec, rngs)
            _record_chunk(
                run_logger,
                instances=len(rngs),
                duration_s=time.perf_counter() - t0,
                vectorized=False,
                chunk_index=0,
                start=0,
            )
    else:
        from repro.parallel import MonteCarloChunkTask, collect_values, map_tasks

        payload = picklable_network(net)
        chunk = max(1, -(-n_samples // n_jobs))  # ceil division
        tasks = [
            MonteCarloChunkTask(
                net=payload,
                x=x,
                y=y,
                variation=spec,
                seed_seqs=tuple(seed_seqs[start:start + chunk]),
                start=start,
                vectorized=vectorized,
                instance_chunk=instance_chunk,
            )
            for start in range(0, n_samples, chunk)
        ]
        chunks = collect_values(
            map_tasks(tasks, n_jobs=n_jobs, progress=progress, on_error=on_error)
        )
        accuracies = np.concatenate([acc for acc, _ in chunks])
        powers = np.concatenate([pow_ for _, pow_ in chunks])

    return MonteCarloReport(
        accuracies=accuracies,
        powers=powers,
        nominal_accuracy=nominal_accuracy,
        nominal_power=nominal_power,
        power_budget=power_budget,
        accuracy_floor=accuracy_floor,
    )
