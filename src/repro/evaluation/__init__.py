"""Evaluation harness: experiment orchestration and paper-artifact rendering.

- :mod:`repro.evaluation.metrics` — accuracy/power/device metrics including
  the accuracy-to-power ratio behind the paper's 52×/59× headline claims,
- :mod:`repro.evaluation.experiments` — the dataset × AF × budget experiment
  grid (Table I / Fig. 4) and the Pareto comparison (Fig. 5),
- :mod:`repro.evaluation.reporting` — text renderers that print the same
  rows/series the paper reports,
- :mod:`repro.evaluation.figures` — ASCII scatter/curve emitters for the
  figures.
"""

from repro.evaluation.metrics import accuracy_power_ratio, average_metrics, MetricRow
from repro.evaluation.experiments import (
    ExperimentConfig,
    BudgetRunRecord,
    run_budget_experiment,
    run_dataset_grid,
    run_pareto_comparison,
    POWER_BUDGET_FRACTIONS,
    BASELINE_ALPHAS,
)
from repro.evaluation.reporting import render_table1, render_fig4_rows, render_fig5_rows
from repro.evaluation.montecarlo import run_monte_carlo, MonteCarloReport
from repro.evaluation.lifetime import run_lifetime_analysis, LifetimeReport
from repro.evaluation.export import write_grid_csv, write_pareto_csv

__all__ = [
    "accuracy_power_ratio",
    "average_metrics",
    "MetricRow",
    "ExperimentConfig",
    "BudgetRunRecord",
    "run_budget_experiment",
    "run_dataset_grid",
    "run_pareto_comparison",
    "POWER_BUDGET_FRACTIONS",
    "BASELINE_ALPHAS",
    "render_table1",
    "render_fig4_rows",
    "render_fig5_rows",
    "run_monte_carlo",
    "MonteCarloReport",
    "run_lifetime_analysis",
    "LifetimeReport",
    "write_grid_csv",
    "write_pareto_csv",
]
