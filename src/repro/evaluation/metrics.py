"""Evaluation metrics.

Defines the quantities Table I reports (power in mW, accuracy in %, device
count) and the accuracy-to-power ratio used for the paper's headline
efficiency claims ("52× improvement in accuracy-to-power ratio over the
baseline at ≈20 % power; 59× at ≈80 %").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MetricRow:
    """One (power budget × activation) cell of Table I."""

    power_mw: float
    accuracy_pct: float
    device_count: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.power_mw, self.accuracy_pct, self.device_count)


def accuracy_power_ratio(accuracy_pct: float, power_mw: float) -> float:
    """Accuracy (percent) per milliwatt — the paper's efficiency metric.

    Raises on non-positive power: a zero-power classifier's ratio is
    undefined and a negative power is a modelling bug.
    """
    if power_mw <= 0:
        raise ValueError("power must be positive")
    return accuracy_pct / power_mw


def ratio_improvement(
    proposed_accuracy_pct: float,
    proposed_power_mw: float,
    baseline_accuracy_pct: float,
    baseline_power_mw: float,
) -> float:
    """How many × the proposed design improves accuracy-to-power."""
    proposed = accuracy_power_ratio(proposed_accuracy_pct, proposed_power_mw)
    baseline = accuracy_power_ratio(baseline_accuracy_pct, baseline_power_mw)
    if baseline <= 0:
        raise ValueError("baseline ratio must be positive")
    return proposed / baseline


def average_metrics(
    powers_w: list[float],
    accuracies: list[float],
    device_counts: list[int],
) -> MetricRow:
    """Average per-dataset results into one Table I cell.

    Accuracies are fractions in [0, 1]; the row reports percent.  Powers are
    watts; the row reports milliwatts — matching the table's units.
    """
    if not (len(powers_w) == len(accuracies) == len(device_counts)):
        raise ValueError("metric lists must be parallel")
    if not powers_w:
        raise ValueError("cannot average zero results")
    return MetricRow(
        power_mw=float(np.mean(powers_w)) * 1e3,
        accuracy_pct=float(np.mean(accuracies)) * 100.0,
        device_count=float(np.mean(device_counts)),
    )


def top_k_mean(values: list[float], k: int = 3, largest: bool = True) -> float:
    """Mean of the k best values (paper: "top three models per dataset").

    With fewer than k values, averages what exists.
    """
    if not values:
        raise ValueError("no values")
    ordered = sorted(values, reverse=largest)
    return float(np.mean(ordered[: max(1, min(k, len(ordered)))]))
