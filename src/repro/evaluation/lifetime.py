"""Accuracy-over-lifetime analysis of trained printed circuits.

Sweeps the normalized lifetime τ from 0 (fresh print) to 1 (end of
service), applies the :class:`~repro.pdk.aging.AgingModel` to every EGT in
the network's activation circuits (threshold drift + transconductance
decay) and to the printed resistances (via the physical q parameters), and
re-evaluates accuracy and power at each age.  Optionally layers per-device
stochastic spread via repeated draws per τ.

The headline metric is the **functional lifetime**: the largest τ at which
mean accuracy still clears a floor — the quantity a disposable-sensor
designer actually provisions for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional as F
from repro.circuits.pnc import PrintedNeuralNetwork
from repro.pdk.aging import AgingModel


@dataclass
class LifetimeReport:
    """Accuracy/power trajectories over normalized lifetime."""

    taus: np.ndarray
    accuracy_mean: np.ndarray
    accuracy_min: np.ndarray
    power_mean: np.ndarray
    accuracy_floor: float

    @property
    def fresh_accuracy(self) -> float:
        return float(self.accuracy_mean[0])

    @property
    def end_of_life_accuracy(self) -> float:
        return float(self.accuracy_mean[-1])

    def functional_lifetime(self) -> float:
        """Largest τ whose mean accuracy still clears the floor.

        Returns 0.0 if even the fresh circuit misses the floor; 1.0 if the
        whole service life clears it.
        """
        passing = self.accuracy_mean >= self.accuracy_floor
        if not passing[0]:
            return 0.0
        failing = np.flatnonzero(~passing)
        if len(failing) == 0:
            return 1.0
        return float(self.taus[failing[0] - 1])

    def summary(self) -> str:
        return (
            f"lifetime sweep over {len(self.taus)} ages: accuracy "
            f"{self.fresh_accuracy * 100:.1f}% (fresh) → "
            f"{self.end_of_life_accuracy * 100:.1f}% (end of life); "
            f"functional lifetime τ = {self.functional_lifetime():.2f} "
            f"at floor {self.accuracy_floor * 100:.0f}%"
        )


def run_lifetime_analysis(
    net: PrintedNeuralNetwork,
    x: np.ndarray,
    y: np.ndarray,
    aging: AgingModel,
    taus: np.ndarray | None = None,
    n_draws: int = 1,
    seed: int = 0,
    accuracy_floor: float = 0.6,
) -> LifetimeReport:
    """Evaluate ``net`` at a sweep of ages.

    ``n_draws > 1`` adds per-device stochastic aging spread (independent per
    draw); with ``n_draws = 1`` the nominal trajectory applies.  The network
    is restored to its fresh state on return.
    """
    taus = np.linspace(0.0, 1.0, 6) if taus is None else np.asarray(taus, dtype=np.float64)
    state = net.state_dict()
    nominal_models = [activation.transfer.model for activation in net.activations()]
    x_t = Tensor(x)

    accuracy_mean = np.zeros(len(taus))
    accuracy_min = np.zeros(len(taus))
    power_mean = np.zeros(len(taus))
    rng = np.random.default_rng(seed)

    try:
        for t_index, tau in enumerate(taus):
            accuracies, powers = [], []
            for draw in range(max(1, n_draws)):
                net.load_state_dict(state)
                draw_rng = rng if n_draws > 1 else None
                for activation, fresh_model in zip(net.activations(), nominal_models):
                    activation.transfer.model = aging.age_model_card(
                        fresh_model, float(tau), rng=draw_rng
                    )
                    q = activation.q_values()
                    if activation.space.log_scale:
                        resistive = np.array(activation.space.log_scale, dtype=bool)
                        q[resistive] = aging.age_resistances(q[resistive], float(tau), rng=draw_rng)
                        activation.set_q(q)
                with no_grad():
                    logits, breakdown = net.forward_with_power(x_t)
                accuracies.append(F.accuracy(logits, y))
                powers.append(float(breakdown.total.data))
            accuracy_mean[t_index] = float(np.mean(accuracies))
            accuracy_min[t_index] = float(np.min(accuracies))
            power_mean[t_index] = float(np.mean(powers))
    finally:
        net.load_state_dict(state)
        for activation, fresh_model in zip(net.activations(), nominal_models):
            activation.transfer.model = fresh_model

    return LifetimeReport(
        taus=taus,
        accuracy_mean=accuracy_mean,
        accuracy_min=accuracy_min,
        power_mean=power_mean,
        accuracy_floor=accuracy_floor,
    )
