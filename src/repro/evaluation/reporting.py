"""Text renderers of the paper's tables and figure data.

Every artifact of the evaluation section gets a plain-text renderer that
prints the same rows/series the paper reports, so benchmark runs produce
directly comparable output.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.evaluation.experiments import BudgetRunRecord, ParetoComparison
from repro.evaluation.metrics import average_metrics, MetricRow
from repro.pdk.params import ActivationKind, ALL_ACTIVATIONS


def aggregate_table1(
    records: list[BudgetRunRecord],
) -> dict[tuple[float, ActivationKind], MetricRow]:
    """Average the grid records into Table I cells keyed (budget, AF)."""
    grouped: dict[tuple[float, ActivationKind], list[BudgetRunRecord]] = defaultdict(list)
    for record in records:
        grouped[(record.budget_fraction, record.kind)].append(record)
    table: dict[tuple[float, ActivationKind], MetricRow] = {}
    for key, group in grouped.items():
        table[key] = average_metrics(
            [r.power_w for r in group],
            [r.accuracy for r in group],
            [r.device_count for r in group],
        )
    return table


def render_table1(
    records: list[BudgetRunRecord],
    baseline_rows: dict[float, tuple[float, float]] | None = None,
) -> str:
    """Render Table I: metrics across datasets per AF and budget.

    ``baseline_rows`` maps budget fraction → (power_mW, accuracy_pct) of the
    penalty baseline at the corresponding α, shown in the rightmost column
    like the paper's layout.
    """
    table = aggregate_table1(records)
    budgets = sorted({k[0] for k in table})
    kinds = [k for k in ALL_ACTIVATIONS if any(key[1] == k for key in table)]

    header = ["Budget", "Metric"] + [k.value for k in kinds]
    if baseline_rows:
        header.append("Baseline")
    widths = [8, 6] + [14] * len(kinds) + ([12] if baseline_rows else [])

    def fmt_row(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt_row(header), "-" * (sum(widths) + 3 * (len(widths) - 1))]
    for budget in budgets:
        for metric_name, getter, formatter in (
            ("Pow", lambda m: m.power_mw, lambda v: f"{v:.3f}"),
            ("Acc", lambda m: m.accuracy_pct, lambda v: f"{v:.2f}"),
            ("#Dev", lambda m: m.device_count, lambda v: f"{v:.0f}"),
        ):
            cells = [f"{int(budget * 100)}%", metric_name]
            for kind in kinds:
                row = table.get((budget, kind))
                cells.append(formatter(getter(row)) if row else "-")
            if baseline_rows:
                base = baseline_rows.get(budget)
                if base is None:
                    cells.append("-")
                elif metric_name == "Pow":
                    cells.append(f"{base[0]:.3f}")
                elif metric_name == "Acc":
                    cells.append(f"{base[1]:.2f}")
                else:
                    cells.append("-")
            lines.append(fmt_row(cells))
        lines.append("")
    return "\n".join(lines)


def render_fig4_rows(records: list[BudgetRunRecord]) -> str:
    """Fig. 4 as rows: dataset, AF, budget, accuracy %, power mW, feasible."""
    lines = [
        f"{'dataset':22s} {'AF':16s} {'budget':>6s} {'acc%':>7s} {'P(mW)':>8s} "
        f"{'limit(mW)':>10s} {'feasible':>8s}"
    ]
    for r in sorted(records, key=lambda r: (r.dataset, r.kind.value, r.budget_fraction)):
        lines.append(
            f"{r.dataset:22s} {r.kind.value:16s} {int(r.budget_fraction * 100):>5d}% "
            f"{r.accuracy * 100:7.2f} {r.power_w * 1e3:8.4f} {r.budget_w * 1e3:10.4f} "
            f"{str(r.feasible):>8s}"
        )
    return "\n".join(lines)


def render_fig5_rows(comparison: ParetoComparison) -> str:
    """Fig. 5 as rows: the baseline front and the AL points per budget."""
    lines = [f"Fig. 5 — dataset {comparison.dataset}: penalty front vs AL points"]
    lines.append(f"  baseline sweep: {comparison.sweep.n_runs} runs")
    lines.append("  Pareto front (accuracy %, power mW):")
    for accuracy, power in comparison.front:
        lines.append(f"    {accuracy * 100:7.2f}  {power * 1e3:8.4f}")
    lines.append("  AL single-run points:")
    for record in comparison.al_records:
        lines.append(
            f"    budget {int(record.budget_fraction * 100):3d}%: "
            f"acc {record.accuracy * 100:6.2f}%  P {record.power_w * 1e3:8.4f} mW "
            f"(limit {record.budget_w * 1e3:.4f})  feasible={record.feasible}"
        )
    return "\n".join(lines)


def baseline_table_rows(
    sweep_points: np.ndarray,
    alphas: np.ndarray,
    table_alphas: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25),
) -> dict[float, tuple[float, float]]:
    """Pick the baseline cells of Table I from a penalty sweep.

    Returns mapping *budget fraction* → (power_mW, accuracy_pct) where the
    paper pairs α=1 with the 20 % row, α=0.75 with 40 %, etc.
    """
    sweep_points = np.asarray(sweep_points)
    alphas = np.asarray(alphas)
    pairing = dict(zip((0.2, 0.4, 0.6, 0.8), table_alphas))
    rows: dict[float, tuple[float, float]] = {}
    for fraction, alpha in pairing.items():
        mask = np.isclose(alphas, alpha, atol=1e-6)
        if not mask.any():
            idx = np.argmin(np.abs(alphas - alpha))
            mask = np.zeros_like(mask)
            mask[idx] = True
        accuracy = float(sweep_points[mask, 0].mean()) * 100.0
        power = float(sweep_points[mask, 1].mean()) * 1e3
        rows[fraction] = (power, accuracy)
    return rows
