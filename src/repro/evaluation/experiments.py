"""Experiment orchestration for the paper's evaluation section.

The central object is the grid of §IV: for each dataset, each activation
function, and each power budget fraction {20, 40, 60, 80} % of the
unconstrained maximum power, run augmented-Lagrangian training once and
record (accuracy, power, device count, feasibility).  The penalty baseline
sweeps α and seeds on the same splits.

Experiment scale is configurable because paper scale (13 datasets × 4 AFs ×
4 budgets + 500 baseline runs/dataset) is hours of compute: the benchmarks
default to a reduced-but-structurally-identical schedule and honour
``REPRO_FULL=1`` for the full protocol.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field

import numpy as np

from repro.circuits import PrintedNeuralNetwork, PNCConfig
from repro.datasets import load_dataset, train_val_test_split, DataSplit
from repro.parallel import (
    BudgetTask,
    MaxPowerTask,
    NetworkSpec,
    collect_values,
    map_tasks,
)
from repro.pdk.params import ActivationKind, ALL_ACTIVATIONS
from repro.power.surrogate import SurrogatePowerModel, get_cached_surrogate
from repro.training import (
    TrainerSettings,
    TrainResult,
    train_power_constrained,
    train_unconstrained,
    penalty_pareto_sweep,
    pareto_front,
)
# Import the *function* explicitly from its defining module.  ``from
# repro.training import finetune`` is ambiguous: ``finetune`` is both a
# submodule and a re-exported function of the package, so the binding
# depends on package import order — an alias that looked callable but could
# resolve to the module.
from repro.training.finetune import finetune as run_finetune
from repro.training.penalty import ParetoSweepResult

logger = logging.getLogger(__name__)

#: The paper's power budgets, as fractions of the unconstrained maximum.
POWER_BUDGET_FRACTIONS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)

#: The baseline scaling factors reported in Table I.
BASELINE_ALPHAS: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25)


def full_scale() -> bool:
    """Whether paper-scale experiments were requested (env REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@dataclass
class ExperimentConfig:
    """Knobs of one experiment campaign."""

    epochs: int = 450
    patience: int = 100
    mu: float = 2.0
    mu_growth: float = 1.2
    warmup_epochs: int = 80
    anneal_epochs: int = 200
    seed: int = 0
    surrogate_n_q: int = 1500
    surrogate_epochs: int = 120
    #: AL runs per (dataset, AF, budget); the paper reports top-3 of several
    n_restarts: int = 1
    #: run the paper's §IV-A1 fine-tuning (prune masks + constrained retrain)
    finetune: bool = True
    finetune_epochs: int = 150
    #: execute epochs by captured-graph replay (CLI --no-capture disables)
    capture_graph: bool = True

    def trainer_settings(self) -> TrainerSettings:
        return TrainerSettings(
            epochs=self.epochs, patience=self.patience, capture_graph=self.capture_graph
        )


@dataclass
class BudgetRunRecord:
    """One grid cell: dataset × activation × budget."""

    dataset: str
    kind: ActivationKind
    budget_fraction: float
    budget_w: float
    max_power_w: float
    result: TrainResult

    @property
    def accuracy(self) -> float:
        return self.result.test_accuracy

    @property
    def power_w(self) -> float:
        return self.result.power

    @property
    def feasible(self) -> bool:
        return self.result.feasible

    @property
    def device_count(self) -> int:
        return self.result.device_count


def _surrogates(
    kind: ActivationKind, config: ExperimentConfig
) -> tuple[SurrogatePowerModel, SurrogatePowerModel]:
    af = get_cached_surrogate(kind, n_q=config.surrogate_n_q, epochs=config.surrogate_epochs)
    neg = get_cached_surrogate("negation", n_q=config.surrogate_n_q // 2, epochs=config.surrogate_epochs)
    return af, neg


def make_network(
    dataset_name: str,
    kind: ActivationKind,
    seed: int,
    config: ExperimentConfig,
) -> PrintedNeuralNetwork:
    """Construct a fresh pNC for a dataset with the paper's topology."""
    dataset = load_dataset(dataset_name)
    af, neg = _surrogates(kind, config)
    pnc_config = PNCConfig(kind=kind)
    return PrintedNeuralNetwork(
        dataset.n_features, dataset.n_classes, pnc_config, np.random.default_rng(seed), af, neg
    )


def dataset_split(dataset_name: str, seed: int = 0) -> DataSplit:
    """The standard 60/20/20 split of one benchmark."""
    return train_val_test_split(load_dataset(dataset_name), seed=seed)


def unconstrained_max_power(
    dataset_name: str,
    kind: ActivationKind,
    config: ExperimentConfig,
    split: DataSplit | None = None,
    callbacks=None,
) -> tuple[float, TrainResult]:
    """Maximum power observed in unconstrained training (budget anchor).

    ``callbacks`` are forwarded to the training loop — inside a pool
    worker this is where :func:`repro.parallel.worker_callbacks` attaches
    the worker-attributed event stream and health watchdogs.
    """
    split = split or dataset_split(dataset_name, seed=config.seed)
    net = make_network(dataset_name, kind, config.seed, config)
    result = train_unconstrained(
        net, split, settings=config.trainer_settings(), callbacks=callbacks
    )
    max_power = max(result.power_trace) if result.power_trace else result.power
    return max_power, result


def run_budget_experiment(
    dataset_name: str,
    kind: ActivationKind,
    budget_fraction: float,
    config: ExperimentConfig,
    max_power_w: float | None = None,
    split: DataSplit | None = None,
    callbacks=None,
) -> BudgetRunRecord:
    """One AL training run at ``budget_fraction`` of the max power.

    With ``config.n_restarts > 1`` the best feasible test accuracy across
    restarts is kept (the paper selects the top models per dataset).
    ``callbacks`` ride into every contained training loop (AL restarts and
    the fine-tuning pass alike).
    """
    split = split or dataset_split(dataset_name, seed=config.seed)
    if max_power_w is None:
        max_power_w, _ = unconstrained_max_power(
            dataset_name, kind, config, split=split, callbacks=callbacks
        )
    budget = budget_fraction * max_power_w
    logger.info(
        "budget experiment: %s / %s @ %.0f%% (%.4g W)",
        dataset_name, kind.value, budget_fraction * 100, budget,
    )

    best: TrainResult | None = None
    for restart in range(config.n_restarts):
        net = make_network(dataset_name, kind, config.seed + 1000 * restart + 1, config)
        result = train_power_constrained(
            net,
            split,
            power_budget=budget,
            mu=config.mu,
            mu_growth=config.mu_growth,
            warmup_epochs=config.warmup_epochs,
            anneal_epochs=config.anneal_epochs,
            settings=config.trainer_settings(),
            callbacks=callbacks,
        )
        if config.finetune:
            tuned = run_finetune(
                net,
                split,
                power_budget=budget,
                mu=config.mu,
                settings=TrainerSettings(
                    epochs=config.finetune_epochs, lr=0.02, patience=max(30, config.patience // 2)
                ),
                callbacks=callbacks,
            )
            # Keep the fine-tuned circuit when it is at least as good (the
            # paper's protocol always fine-tunes; we guard against the rare
            # pruning that destroys a fragile solution).
            if _better(tuned, result) or (
                tuned.feasible == result.feasible
                and tuned.test_accuracy >= result.test_accuracy - 1e-9
            ):
                result = tuned
        if best is None or _better(result, best):
            best = result
    return BudgetRunRecord(
        dataset=dataset_name,
        kind=kind,
        budget_fraction=budget_fraction,
        budget_w=budget,
        max_power_w=max_power_w,
        result=best,
    )


def _better(a: TrainResult, b: TrainResult) -> bool:
    """Prefer feasible results, then higher test accuracy."""
    if a.feasible != b.feasible:
        return a.feasible
    return a.test_accuracy > b.test_accuracy


def run_dataset_grid(
    dataset_names: list[str],
    kinds: tuple[ActivationKind, ...] = ALL_ACTIVATIONS,
    budget_fractions: tuple[float, ...] = POWER_BUDGET_FRACTIONS,
    config: ExperimentConfig | None = None,
    n_jobs: int = 1,
    progress=None,
    on_error: str = "continue",
) -> list[BudgetRunRecord]:
    """The full Table I / Fig. 4 grid over the given datasets.

    Runs in two phases so the budget anchor stays shared exactly as in the
    serial protocol: phase 1 maps one unconstrained run per (dataset, AF)
    to find each cell's maximum power; phase 2 maps one AL run per
    (dataset, AF, budget fraction).  Both phases go through
    :func:`repro.parallel.map_tasks`, so results are bit-identical for any
    ``n_jobs`` and records come back in the serial iteration order.

    ``progress`` is an optional ``(outcome, done, total)`` callback — see
    :class:`repro.parallel.TaskProgressReporter`.  If any task fails, the
    remaining tasks still run (or, with ``on_error="cancel"``, queued
    tasks are cancelled), then a
    :class:`repro.parallel.TaskFailedError` naming every failed cell is
    raised.
    """
    config = config or ExperimentConfig()
    cells = [(dataset_name, kind) for dataset_name in dataset_names for kind in kinds]
    max_tasks = [MaxPowerTask(dataset_name, kind, config) for dataset_name, kind in cells]
    max_powers = collect_values(
        map_tasks(max_tasks, n_jobs=n_jobs, progress=progress, on_error=on_error)
    )
    anchor = dict(zip(cells, max_powers))

    budget_tasks = [
        BudgetTask(dataset_name, kind, fraction, anchor[(dataset_name, kind)], config)
        for dataset_name, kind in cells
        for fraction in budget_fractions
    ]
    return collect_values(
        map_tasks(budget_tasks, n_jobs=n_jobs, progress=progress, on_error=on_error)
    )


@dataclass
class ParetoComparison:
    """Fig. 5 data for one dataset: baseline sweep vs AL points."""

    dataset: str
    sweep: ParetoSweepResult
    front: np.ndarray  # (k, 2) accuracy/power
    al_records: list[BudgetRunRecord] = field(default_factory=list)

    def al_points(self) -> np.ndarray:
        return np.array([[r.accuracy, r.power_w] for r in self.al_records])


def network_spec(dataset_name: str, kind: ActivationKind, config: ExperimentConfig) -> NetworkSpec:
    """The picklable recipe matching :func:`make_network` + :func:`dataset_split`."""
    return NetworkSpec(
        dataset=dataset_name,
        kind=kind,
        surrogate_n_q=config.surrogate_n_q,
        surrogate_epochs=config.surrogate_epochs,
        split_seed=config.seed,
    )


def run_pareto_comparison(
    dataset_name: str,
    kind: ActivationKind = ActivationKind.TANH,
    n_alphas: int = 6,
    n_seeds: int = 2,
    budget_fractions: tuple[float, ...] = POWER_BUDGET_FRACTIONS,
    config: ExperimentConfig | None = None,
    n_jobs: int = 1,
    progress=None,
    on_error: str = "continue",
    vectorized: bool = False,
    instance_chunk: int = 64,
) -> ParetoComparison:
    """Fig. 5: penalty sweep Pareto front vs single-run AL optima.

    Paper scale is ``n_alphas=50, n_seeds=10`` (500 runs); defaults are
    reduced.  The AL side runs exactly one training per budget.  Both the
    sweep and the AL runs shard over ``n_jobs`` worker processes.
    ``vectorized=True`` trains the sweep as instance-stacked fleets of up
    to ``instance_chunk`` (α, seed) points per captured program (see
    :func:`repro.training.penalty.penalty_pareto_sweep`).
    """
    config = config or ExperimentConfig()
    split = dataset_split(dataset_name, seed=config.seed)
    spec = network_spec(dataset_name, kind, config)

    sweep = penalty_pareto_sweep(
        spec.build,
        split,
        n_alphas=n_alphas,
        n_seeds=n_seeds,
        settings=config.trainer_settings(),
        n_jobs=n_jobs,
        net_spec=spec,
        progress=progress,
        on_error=on_error,
        vectorized=vectorized,
        instance_chunk=instance_chunk,
    )
    front = pareto_front(sweep.points())

    max_power, _ = unconstrained_max_power(dataset_name, kind, config, split=split)
    al_tasks = [
        BudgetTask(dataset_name, kind, fraction, max_power, config)
        for fraction in budget_fractions
    ]
    al_records = collect_values(
        map_tasks(al_tasks, n_jobs=n_jobs, progress=progress, on_error=on_error)
    )
    return ParetoComparison(dataset_name, sweep, front, al_records)
