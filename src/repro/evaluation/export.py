"""CSV / dict export of experiment artifacts.

Downstream users want machine-readable results next to the pretty tables:
these helpers flatten :class:`BudgetRunRecord` grids and Pareto comparisons
into plain dict rows and CSV files (stdlib ``csv`` only).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.evaluation.experiments import BudgetRunRecord, ParetoComparison

GRID_FIELDS = [
    "dataset",
    "activation",
    "budget_fraction",
    "budget_mw",
    "max_power_mw",
    "power_mw",
    "test_accuracy",
    "val_accuracy",
    "train_accuracy",
    "feasible",
    "device_count",
    "activation_circuits",
    "negation_circuits",
    "epochs_run",
    "best_epoch",
]


def record_to_row(record: BudgetRunRecord) -> dict[str, object]:
    """Flatten one grid record into a CSV-ready dict."""
    result = record.result
    return {
        "dataset": record.dataset,
        "activation": record.kind.value,
        "budget_fraction": record.budget_fraction,
        "budget_mw": record.budget_w * 1e3,
        "max_power_mw": record.max_power_w * 1e3,
        "power_mw": record.power_w * 1e3,
        "test_accuracy": result.test_accuracy,
        "val_accuracy": result.val_accuracy,
        "train_accuracy": result.train_accuracy,
        "feasible": record.feasible,
        "device_count": record.device_count,
        "activation_circuits": result.counts.get("activation_circuits", 0),
        "negation_circuits": result.counts.get("negation_circuits", 0),
        "epochs_run": result.epochs_run,
        "best_epoch": result.best_epoch,
    }


def write_grid_csv(records: list[BudgetRunRecord], path: Path | str) -> Path:
    """Write a grid of records to CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=GRID_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(record_to_row(record))
    return path


def write_pareto_csv(comparison: ParetoComparison, path: Path | str) -> Path:
    """Write a Fig. 5 comparison to CSV (sweep points, front, AL points)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "accuracy", "power_mw", "budget_mw"])
        for accuracy, power in comparison.sweep.points():
            writer.writerow(["sweep", accuracy, power * 1e3, ""])
        for accuracy, power in comparison.front:
            writer.writerow(["front", accuracy, power * 1e3, ""])
        for record in comparison.al_records:
            writer.writerow(
                ["al", record.accuracy, record.power_w * 1e3, record.budget_w * 1e3]
            )
    return path


def read_grid_csv(path: Path | str) -> list[dict[str, str]]:
    """Read back a grid CSV as raw string dicts (round-trip helper)."""
    with Path(path).open() as handle:
        return list(csv.DictReader(handle))
