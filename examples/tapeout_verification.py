"""Tape-out check: verify a trained pNC against its full flat netlist.

The training model evaluates the circuit layer by layer with idealized
interfaces.  Before committing a design to ink, flatten the WHOLE classifier
— every crossbar resistor, negation circuit and activation circuit — into a
single netlist, solve its DC operating point with the MNA simulator, and
compare decisions, output voltages and power against the layered model.
Also writes the flattened design as a standard ``.cir`` SPICE file.

Run:  python examples/tapeout_verification.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import (
    ActivationKind,
    PNCConfig,
    PrintedNeuralNetwork,
    TrainerSettings,
    get_cached_surrogate,
    load_dataset,
    train_power_constrained,
    train_val_test_split,
)
from repro.circuits import export_network, verify_against_model
from repro.spice.export import save_spice_file

DATASET = "iris"
ACTIVATION = ActivationKind.RELU
SETTINGS = TrainerSettings(epochs=250, patience=80)


def main() -> None:
    print(f"== Tape-out verification on '{DATASET}' with {ACTIVATION.value} ==")
    data = load_dataset(DATASET)
    split = train_val_test_split(data, seed=0)
    af = get_cached_surrogate(ACTIVATION, n_q=800, epochs=60)
    neg = get_cached_surrogate("negation", n_q=500, epochs=60)

    net = PrintedNeuralNetwork(
        data.n_features, data.n_classes, PNCConfig(kind=ACTIVATION),
        np.random.default_rng(2), af, neg,
    )
    result = train_power_constrained(net, split, power_budget=3e-4, settings=SETTINGS)
    print(f"trained: acc {result.test_accuracy * 100:.1f}%  "
          f"P {result.power * 1e3:.4f} mW  feasible={result.feasible}  "
          f"devices={net.device_count()}")

    print("\n[1/3] flat-netlist verification (ideal negation — matches the model)")
    report = verify_against_model(net, split.x_test, n_samples=12, negation="ideal")
    print(report.summary())

    print("\n[2/3] flat-netlist verification (real printed negation circuits)")
    report_real = verify_against_model(net, split.x_test, n_samples=12, negation="circuit")
    print(report_real.summary())

    print("\n[3/3] exporting the flattened design as SPICE")
    exported = export_network(net, split.x_test[0], negation="circuit")
    out_path = Path("pnc_flat.cir")
    save_spice_file(exported.circuit, out_path, title=f"pNC {DATASET} {ACTIVATION.value}")
    n_r = len(exported.circuit.resistors)
    n_m = len(exported.circuit.transistors)
    print(f"wrote {out_path} — {n_r} resistors, {n_m} transistors, "
          f"{len(exported.circuit.nodes())} nodes")


if __name__ == "__main__":
    main()
