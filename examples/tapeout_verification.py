"""Tape-out walkthrough: train, compile to tiles, and re-verify the bundle.

The training model evaluates the circuit layer by layer with idealized
interfaces; ink on foil is a grid of physically constrained crossbar tiles.
This example drives the ``repro compile`` CLI end to end — the same
commands a sign-off flow would script:

1. ``repro train iris --run-dir runs`` — train under a power budget and
   freeze the model as a ``.pnz`` artifact inside the run directory,
2. ``repro compile --run latest --tile-rows 4 --tile-cols 2`` — pack the
   trained classifier onto tiles smaller than its largest layer, write one
   SPICE netlist + test-vector file per tile, and DC-solve every tile
   group against the layered model's expected voltages and decisions,
3. ``repro compile --verify-only compiled`` — re-verify the bundle purely
   from the files on disk (what a foundry or CI gate would run).

Run:  python examples/tapeout_verification.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main as repro

DATASET = "iris"
TILE_ROWS = 4  # extended crossbar rows per tile (iris layer 0 has 6)
TILE_COLS = 2  # crossbar columns per tile


def run(argv: list[str]) -> int:
    print(f"\n$ repro {' '.join(argv)}")
    return repro(argv)


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="tapeout-"))
    runs = str(workdir / "runs")
    bundle = str(workdir / "compiled")

    print(f"== Tape-out walkthrough on '{DATASET}' (working dir: {workdir}) ==")

    # [1/3] Train a budgeted classifier; --run-dir freezes model.pnz.
    code = run(["train", DATASET, "--af", "p-ReLU", "--epochs", "120",
                "--run-dir", runs])
    if code not in (0, 1):  # 1 = converged infeasible; still compilable
        return code

    # [2/3] Compile the frozen run onto tiles smaller than its largest
    # layer, with per-tile SPICE re-verification and vector export.
    code = run(["compile", "--run", "latest", "--dir", runs,
                "--tile-rows", str(TILE_ROWS), "--tile-cols", str(TILE_COLS),
                "--out", bundle])
    if code != 0:
        return code

    # [3/3] Sign off the bundle from disk alone — checksums, re-parsed
    # netlists, re-solved vectors.  Tamper with any tile file and this
    # exits non-zero.
    return run(["compile", "--verify-only", bundle])


if __name__ == "__main__":
    sys.exit(main())
