"""Quickstart: train a printed neuromorphic classifier under a hard power budget.

Walks the full pipeline of the paper on one benchmark dataset:

1. fit the surrogate power models (cached after the first run),
2. load a benchmark dataset and split it 60/20/20,
3. train unconstrained to find the maximum power P_max,
4. train with the augmented Lagrangian under a 40 % budget — ONE run,
5. report accuracy, power, feasibility and printed device count.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ActivationKind,
    PNCConfig,
    PrintedNeuralNetwork,
    TrainerSettings,
    get_cached_surrogate,
    load_dataset,
    train_power_constrained,
    train_unconstrained,
    train_val_test_split,
)

DATASET = "iris"
ACTIVATION = ActivationKind.CLIPPED_RELU
BUDGET_FRACTION = 0.4
SETTINGS = TrainerSettings(epochs=250, patience=80)


def make_network(seed: int, af_surrogate, neg_surrogate) -> PrintedNeuralNetwork:
    data = load_dataset(DATASET)
    return PrintedNeuralNetwork(
        data.n_features,
        data.n_classes,
        PNCConfig(kind=ACTIVATION),
        np.random.default_rng(seed),
        af_surrogate,
        neg_surrogate,
    )


def main() -> None:
    print(f"== Power-constrained pNC training on '{DATASET}' with {ACTIVATION.value} ==")

    print("[1/4] fitting surrogate power models (cached)...")
    af_surrogate = get_cached_surrogate(ACTIVATION, n_q=800, epochs=60)
    neg_surrogate = get_cached_surrogate("negation", n_q=500, epochs=60)
    if af_surrogate.report:
        print(f"      P^AF fit: R2={af_surrogate.report.test_r2:.3f} "
              f"on {af_surrogate.report.n_samples} circuit simulations")

    print("[2/4] loading data (60/20/20 split)...")
    data = load_dataset(DATASET)
    split = train_val_test_split(data, seed=0)
    print(f"      {data.n_samples} samples, {data.n_features} features, {data.n_classes} classes")

    print("[3/4] unconstrained training to find the maximum power...")
    reference = train_unconstrained(make_network(0, af_surrogate, neg_surrogate), split, settings=SETTINGS)
    max_power = max(reference.power_trace)
    print(f"      unconstrained: acc {reference.test_accuracy*100:.1f}%, "
          f"P_max {max_power*1e3:.4f} mW, {reference.device_count} devices")

    budget = BUDGET_FRACTION * max_power
    print(f"[4/4] augmented Lagrangian training under a hard "
          f"{int(BUDGET_FRACTION*100)}% budget = {budget*1e3:.4f} mW (single run)...")
    net = make_network(1, af_surrogate, neg_surrogate)
    result = train_power_constrained(net, split, power_budget=budget, mu=5.0, settings=SETTINGS)

    print("\n== Result ==")
    print(f"  test accuracy : {result.test_accuracy*100:.2f}%")
    print(f"  circuit power : {result.power*1e3:.4f} mW (budget {budget*1e3:.4f} mW)")
    print(f"  feasible      : {result.feasible}")
    print(f"  devices       : {result.device_count} printed components "
          f"({result.counts['activation_circuits']} activation circuits, "
          f"{result.counts['negation_circuits']} negation circuits)")
    print(f"  epochs        : {result.epochs_run} (best checkpoint at {result.best_epoch})")


if __name__ == "__main__":
    main()
