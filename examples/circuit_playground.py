"""Circuit playground: explore the printed activation circuits directly.

Uses the SPICE substrate and the differentiable transfer models to sweep
each printed activation circuit, print its transfer curve and power curve
(Fig. 3(c–f)), and cross-check the two code paths against each other.
Useful both as a sanity tour of the PDK and as a template for adding new
printed circuit primitives.

Run:  python examples/circuit_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.evaluation.figures import AsciiCanvas
from repro.pdk.circuits import simulate_activation, activation_device_count
from repro.pdk.params import ActivationKind, design_space
from repro.pdk.transfer import TransferModel

V_GRID = np.linspace(-1.0, 1.0, 33)


def transfer_canvas(v: np.ndarray, out: np.ndarray, title: str) -> str:
    canvas = AsciiCanvas((float(v.min()), float(v.max())),
                         (min(-0.05, float(out.min())), max(1.0, float(out.max()))),
                         height=12)
    canvas.curve(v, out, marker="*")
    return f"{title}\n" + canvas.render(x_label="V_in (V)", y_label="V_out (V)")


def main() -> None:
    for kind in ActivationKind:
        space = design_space(kind)
        q = space.center()
        model = TransferModel(kind)

        # Differentiable transfer model (vectorized, one broadcast solve):
        v_out, power = model.output_and_power(Tensor(V_GRID), [Tensor(x) for x in q])

        # Cross-check a few points against the full MNA circuit solver:
        checks = [simulate_activation(kind, q, float(v)) for v in (-0.5, 0.0, 0.5)]
        model_at = dict(zip((-0.5, 0.0, 0.5), zip(v_out.data[::16], power.data[::16])))
        worst = max(
            abs(spice_v - float(model.output_and_power(Tensor(np.array([v])), [Tensor(x) for x in q])[0].data[0]))
            for v, (spice_v, _) in zip((-0.5, 0.0, 0.5), checks)
        )

        print("=" * 74)
        print(f"{kind.value} — {activation_device_count(kind)} printed components, "
              f"{space.dimension} learnable parameters q = {list(space.names)}")
        print(transfer_canvas(V_GRID, v_out.data, "transfer"))
        power_uw = power.data * 1e6
        canvas = AsciiCanvas((-1.0, 1.0), (0.0, float(power_uw.max()) * 1.1 + 1e-9), height=10)
        canvas.curve(V_GRID, power_uw, marker="*")
        print("power\n" + canvas.render(x_label="V_in (V)", y_label="power uW"))
        print(f"transfer model vs SPICE solver, worst |dV| at 3 probes: {worst:.2e} V")

        # Show that gradients flow into the physical parameters:
        q_tensors = [Tensor(x, requires_grad=True) for x in q]
        _, p = model.output_and_power(Tensor(np.array([0.3])), q_tensors)
        p.sum().backward()
        sensitivities = {
            name: float(t.grad) * x  # d(power)/d(ln q): scale-free sensitivity
            for name, t, x in zip(space.names, q_tensors, q)
        }
        ranked = sorted(sensitivities.items(), key=lambda kv: -abs(kv[1]))[:3]
        print("top power sensitivities d P / d ln q at V_in=0.3:")
        for name, value in ranked:
            print(f"   {name:6s}: {value:+.3e} W per e-fold")
        print()


if __name__ == "__main__":
    main()
