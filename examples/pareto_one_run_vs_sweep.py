"""Reproduce the paper's core computational claim on one dataset (Fig. 5).

The penalty-based baseline traces the power/accuracy Pareto front with a
sweep of (α, seed) training runs — the paper uses up to 500 per dataset.
The augmented Lagrangian reaches each power budget with ONE run.  This
example runs both on a benchmark dataset, prints the fronts side by side as
an ASCII chart, and reports the run-count and wall-clock asymmetry.

Run:  python examples/pareto_one_run_vs_sweep.py
"""

from __future__ import annotations

import time

from repro.evaluation.experiments import ExperimentConfig, run_pareto_comparison
from repro.evaluation.figures import fig5_canvas
from repro.evaluation.reporting import render_fig5_rows
from repro.pdk.params import ActivationKind
from repro.training.pareto import front_accuracy_at_power

DATASET = "seeds"
N_ALPHAS = 6  # the paper sweeps 50
N_SEEDS = 2  # the paper uses 10


def main() -> None:
    print(f"== Penalty sweep vs one-run augmented Lagrangian on '{DATASET}' (p-tanh) ==")
    config = ExperimentConfig(epochs=200, patience=60, surrogate_n_q=800, surrogate_epochs=60)

    start = time.time()
    comparison = run_pareto_comparison(
        DATASET, kind=ActivationKind.TANH, n_alphas=N_ALPHAS, n_seeds=N_SEEDS, config=config
    )
    elapsed = time.time() - start

    print(render_fig5_rows(comparison))
    budgets_mw = [r.budget_w * 1e3 for r in comparison.al_records]
    print(fig5_canvas(comparison.front, comparison.al_points(), budgets_mw))

    sweep_runs = comparison.sweep.n_runs
    al_runs = len(comparison.al_records)
    print("\n== Cost accounting ==")
    print(f"  baseline sweep : {sweep_runs} training runs "
          f"(paper scale: {50 * 10} runs per dataset)")
    print(f"  AL method      : {al_runs} runs total — one per power budget")
    print(f"  total wall time: {elapsed:.0f} s")

    print("\n== Budget-by-budget comparison ==")
    for record in comparison.al_records:
        front_best = front_accuracy_at_power(comparison.front, record.budget_w)
        front_text = "none feasible" if front_best == float("-inf") else f"{front_best * 100:.1f}%"
        verdict = (
            "AL wins" if front_best == float("-inf") or record.accuracy >= front_best
            else f"gap {100 * (front_best - record.accuracy):.1f} pts"
        )
        print(
            f"  {int(record.budget_fraction * 100):3d}% budget: AL "
            f"{record.accuracy * 100:5.1f}% vs sweep-front {front_text:>13s}  ({verdict})"
        )


if __name__ == "__main__":
    main()
