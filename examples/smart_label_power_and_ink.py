"""Smart-label scenario: hard power budget AND hard ink/area budget.

Supply-chain smart labels (the paper's Fig. 1 applications) are printed by
the million: beyond the battery-driven power budget, every printed component
costs functional ink and label area, so manufacturing fixes a hard device
budget too.  This example uses the repository's multi-constraint extension —
a two-multiplier augmented Lagrangian — to design a temperature-excursion
classifier that respects both budgets simultaneously, and compares it
against the power-only design.

Run:  python examples/smart_label_power_and_ink.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ActivationKind,
    PNCConfig,
    PrintedNeuralNetwork,
    TrainerSettings,
    get_cached_surrogate,
    load_dataset,
    train_power_constrained,
    train_unconstrained,
    train_val_test_split,
)
from repro.training import train_power_area_constrained

DATASET = "mammographic"  # 5-feature 2-class stand-in for excursion detection
ACTIVATION = ActivationKind.RELU  # the paper's low-device-count champion
POWER_FRACTION = 0.5
DEVICE_FRACTION = 0.6
SETTINGS = TrainerSettings(epochs=300, patience=80)


def make_net(seed: int, af, neg) -> PrintedNeuralNetwork:
    data = load_dataset(DATASET)
    return PrintedNeuralNetwork(
        data.n_features, data.n_classes, PNCConfig(kind=ACTIVATION),
        np.random.default_rng(seed), af, neg,
    )


def main() -> None:
    print("== Smart label: joint power + ink (device) budget ==")
    data = load_dataset(DATASET)
    split = train_val_test_split(data, seed=0)
    af = get_cached_surrogate(ACTIVATION, n_q=800, epochs=60)
    neg = get_cached_surrogate("negation", n_q=500, epochs=60)

    reference = train_unconstrained(make_net(0, af, neg), split, settings=SETTINGS)
    max_power = max(reference.power_trace)
    power_budget = POWER_FRACTION * max_power
    device_budget = max(10, int(reference.device_count * DEVICE_FRACTION))
    print(f"  unconstrained: acc {reference.test_accuracy * 100:.1f}%, "
          f"P_max {max_power * 1e3:.4f} mW, {reference.device_count} devices")
    print(f"  budgets: power ≤ {power_budget * 1e3:.4f} mW, devices ≤ {device_budget}")

    print("\n[power-only constraint]")
    power_net = make_net(1, af, neg)
    power_only = train_power_constrained(
        power_net, split, power_budget=power_budget, settings=SETTINGS
    )
    print(f"  acc {power_only.test_accuracy * 100:.1f}%  P {power_only.power * 1e3:.4f} mW  "
          f"devices {power_net.device_count()}  feasible={power_only.feasible}")

    print("\n[power + device constraint]")
    dual_net = make_net(1, af, neg)
    dual = train_power_area_constrained(
        dual_net, split, power_budget=power_budget, device_budget=device_budget,
        settings=SETTINGS,
    )
    devices = dual_net.device_count()
    print(f"  acc {dual.test_accuracy * 100:.1f}%  P {dual.power * 1e3:.4f} mW  "
          f"devices {devices}  feasible={dual.feasible}")

    print("\n== Summary ==")
    saved = power_net.device_count() - devices
    print(f"  the ink constraint saved {saved} printed components "
          f"({saved / max(power_net.device_count(), 1):.0%}) at an accuracy cost of "
          f"{(power_only.test_accuracy - dual.test_accuracy) * 100:+.1f} points")


if __name__ == "__main__":
    main()
