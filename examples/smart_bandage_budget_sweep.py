"""Smart-bandage scenario: design a vital-sign classifier for a fixed battery.

The paper's motivating application (Fig. 1d): a disposable smart bandage
classifying wound/vital states must run for its whole wear time on a tiny
printed battery — a *hard* power budget set by battery capacity and wear
duration, not a soft preference.

This example sizes that budget from first principles and then designs the
circuit with one augmented-Lagrangian run per candidate activation function,
picking the design that maximizes accuracy within the budget:

- printed Zn–MnO2 battery: ~15 mAh at 0.9 V ≈ 48.6 J usable
- wear time: 7 days ≈ 604 800 s
- continuous sensing power budget: 48.6 J / 604 800 s ≈ 80 µW

The vertebral-column dataset stands in for the two-class physiological
classification workload (its 6 biomechanical features resemble multi-sensor
vitals).

Run:  python examples/smart_bandage_budget_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ALL_ACTIVATIONS,
    PNCConfig,
    PrintedNeuralNetwork,
    TrainerSettings,
    get_cached_surrogate,
    load_dataset,
    train_power_constrained,
    train_val_test_split,
)

DATASET = "vertebral_2c"
BATTERY_CAPACITY_J = 15e-3 * 3600 * 0.9  # 15 mAh at 0.9 V
WEAR_TIME_S = 7 * 24 * 3600
POWER_BUDGET_W = BATTERY_CAPACITY_J / WEAR_TIME_S
SETTINGS = TrainerSettings(epochs=300, patience=80)


def main() -> None:
    print("== Smart-bandage circuit design under a battery-derived budget ==")
    print(f"  battery energy : {BATTERY_CAPACITY_J:.1f} J")
    print(f"  wear time      : {WEAR_TIME_S / 86400:.0f} days")
    print(f"  power budget   : {POWER_BUDGET_W * 1e6:.1f} uW (hard)")

    data = load_dataset(DATASET)
    split = train_val_test_split(data, seed=0)
    neg_surrogate = get_cached_surrogate("negation", n_q=500, epochs=60)

    designs = []
    for kind in ALL_ACTIVATIONS:
        af_surrogate = get_cached_surrogate(kind, n_q=800, epochs=60)
        net = PrintedNeuralNetwork(
            data.n_features, data.n_classes, PNCConfig(kind=kind),
            np.random.default_rng(7), af_surrogate, neg_surrogate,
        )
        result = train_power_constrained(
            net, split, power_budget=POWER_BUDGET_W, mu=5.0, settings=SETTINGS
        )
        designs.append((kind, result))
        print(
            f"  {kind.value:16s}: acc {result.test_accuracy * 100:5.1f}%  "
            f"P {result.power * 1e6:7.2f} uW  feasible={result.feasible}  "
            f"devices={result.device_count}"
        )

    feasible = [(k, r) for k, r in designs if r.feasible]
    if not feasible:
        print("\nNo activation meets the budget — consider a shorter wear time.")
        return
    best_kind, best = max(feasible, key=lambda kr: kr[1].test_accuracy)
    lifetime_days = BATTERY_CAPACITY_J / best.power / 86400
    print("\n== Selected design ==")
    print(f"  activation     : {best_kind.value}")
    print(f"  test accuracy  : {best.test_accuracy * 100:.2f}%")
    print(f"  power          : {best.power * 1e6:.2f} uW of {POWER_BUDGET_W * 1e6:.1f} uW budget")
    print(f"  battery life   : {lifetime_days:.1f} days (target {WEAR_TIME_S / 86400:.0f})")
    print(f"  printed devices: {best.device_count}")


if __name__ == "__main__":
    main()
