"""Shared benchmark fixtures.

The Table I / Fig. 4 grid is the expensive shared artifact: a session-scoped
fixture computes it once and both benchmarks consume it.  Scale follows the
environment: the default schedule covers a 3-dataset subset with reduced
epochs (minutes, structurally identical to the paper's protocol);
``REPRO_FULL=1`` switches to all 13 datasets at paper-like epoch counts.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import DATASET_NAMES
from repro.evaluation.experiments import ExperimentConfig, run_dataset_grid, full_scale

#: Reduced-schedule dataset subset: small and fast.
QUICK_DATASETS = ["iris", "seeds"]


def benchmark_config() -> ExperimentConfig:
    if full_scale():
        return ExperimentConfig(epochs=600, patience=120, surrogate_n_q=1500,
                                surrogate_epochs=120, n_restarts=3, finetune_epochs=150)
    return ExperimentConfig(epochs=420, patience=100, warmup_epochs=60, anneal_epochs=160,
                            surrogate_n_q=800, surrogate_epochs=60, finetune_epochs=80,
                            n_restarts=2)


def benchmark_datasets() -> list[str]:
    if full_scale():
        return list(DATASET_NAMES)
    return QUICK_DATASETS


@pytest.fixture(scope="session")
def experiment_grid():
    """The dataset × AF × budget grid of records (Table I / Fig. 4 data)."""
    return run_dataset_grid(benchmark_datasets(), config=benchmark_config())


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
