"""Ablation — the paper's fine-tuning phase (§IV-A1) on vs off.

After constrained training the paper generates masks m^C / m^N that prune
dead resistors and marginal negation circuits, then retrains under the same
budget.  Asserted shape:

- fine-tuning never increases the printed device count (pruning is
  monotone),
- the fine-tuned circuit still respects the power budget,
- test accuracy does not collapse (retraining recovers what pruning cost).
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import benchmark_config, run_once
from repro.autograd.tensor import Tensor
from repro.evaluation.experiments import dataset_split, make_network, unconstrained_max_power
from repro.pdk.params import ActivationKind
from repro.training import TrainerSettings, train_power_constrained, finetune, generate_masks

DATASET = "seeds"
KIND = ActivationKind.RELU


def test_finetune_ablation(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        budget = 0.5 * max_power
        net = make_network(DATASET, KIND, config.seed + 5, config)
        before = train_power_constrained(
            net, split, power_budget=budget, mu=config.mu,
            mu_growth=config.mu_growth, warmup_epochs=config.warmup_epochs,
            settings=config.trainer_settings(),
        )
        devices_before = net.device_count()
        masks = generate_masks(net)
        after = finetune(
            net, split, power_budget=budget, masks=masks,
            settings=TrainerSettings(epochs=max(60, config.epochs // 3), lr=0.02, patience=40),
        )
        devices_after = net.device_count()
        return budget, before, after, devices_before, devices_after, masks

    budget, before, after, devices_before, devices_after, masks = run_once(benchmark, build)

    text = (
        f"budget: {budget * 1e3:.4f} mW\n"
        f"before finetune: acc {before.test_accuracy * 100:.1f}%, "
        f"power {before.power * 1e3:.4f} mW, devices {devices_before}\n"
        f"after  finetune: acc {after.test_accuracy * 100:.1f}%, "
        f"power {after.power * 1e3:.4f} mW, devices {devices_after}\n"
        f"kept fraction of crossbar resistors: {masks.kept_fraction * 100:.1f}%"
    )
    print("\n" + text)
    Path(__file__).parent.joinpath("ablation_finetune_output.txt").write_text(text)

    assert devices_after <= devices_before
    if after.feasible:
        assert after.power <= budget * 1.01
    # Retraining keeps the classifier alive.
    assert after.test_accuracy >= before.test_accuracy - 0.15
