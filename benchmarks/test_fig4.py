"""E2 — Fig. 4: accuracy/power scatter with budget threshold lines.

The figure's claim is visual but checkable: every plotted point of a
feasible run lies below its dashed budget line.  The ASCII rendition plus
the per-point rows go to ``fig4_output.txt``.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import run_once
from repro.evaluation.figures import fig4_canvas
from repro.evaluation.reporting import render_fig4_rows


def test_fig4(experiment_grid, benchmark):
    def build():
        points = [
            (r.accuracy * 100.0, r.power_w * 1e3, r.kind.value) for r in experiment_grid
        ]
        budgets = sorted({round(r.budget_w * 1e3, 6) for r in experiment_grid})
        return fig4_canvas(points, budgets)

    canvas = run_once(benchmark, build)
    rows = render_fig4_rows(experiment_grid)
    print("\n" + canvas)
    print(rows)
    Path(__file__).parent.joinpath("fig4_output.txt").write_text(canvas + "\n\n" + rows)

    # Claim: "all results lie below the defined power levels".
    feasible = [r for r in experiment_grid if r.feasible]
    assert feasible, "no feasible runs to plot"
    for record in feasible:
        assert record.power_w <= record.budget_w * 1.001, (
            f"{record.dataset}/{record.kind.value}@{record.budget_fraction} "
            f"exceeds its budget line"
        )

    # The majority of grid cells must be feasible for the figure to carry
    # the paper's message.
    assert len(feasible) / len(experiment_grid) >= 0.7
