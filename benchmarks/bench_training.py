"""Measure captured-graph replay vs eager training; write ``BENCH_training.json``.

Runs the same 40-epoch augmented-Lagrangian iris training twice in one
process — once with ``capture_graph=False`` (every epoch eager) and once
with the default capture-and-replay engine — and compares:

- **per-epoch step time** (the ``epoch_step_time_s`` histogram delta),
  the number the PR's >=1.5x claim is about;
- **per-epoch eval time** (``epoch_eval_time_s``);
- **op counts** of the captured step/eval/val graphs (``graph_step_ops``
  etc.) — the structural fingerprint of the execution engine;
- **trace bit-identity**: loss / power / multiplier / validation-accuracy
  traces must be *exactly* equal between the two modes.

Modes:

    PYTHONPATH=src python benchmarks/bench_training.py           # measure + write
    PYTHONPATH=src python benchmarks/bench_training.py --check   # CI regression gate

``--check`` re-measures on the current host and fails (exit 1) when

- any captured-graph op count differs from the committed baseline (an op
  crept into the hot loop — always a real regression, host-independent);
- the measured step-time speedup falls below baseline/1.25 (a >25%
  relative wall-time regression; comparing *ratios* keeps the gate
  host-independent);
- the eager and replay traces are not bit-identical;
- tracing misbehaves: an --trace training's traces differ from the
  untraced run (bit-identity), the per-kernel interval scheme attributes
  <95% of replay wall time, or the tracing-*disabled* replay path costs
  >2% over the pre-tracing loop (measured as an interleaved min-of-trials
  A/B on one captured graph — same-host ratio, so host-independent).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "BENCH_training.json"
DATASET = "iris"
EPOCHS = 40
BUDGET_FRACTION = 0.4
WALL_TIME_TOLERANCE = 1.25
#: The tracing-disabled replay path may cost at most 2% over the bare loop.
TRACING_OVERHEAD_TOLERANCE = 1.02
#: The interval scheme must attribute at least this share of replay wall.
KERNEL_COVERAGE_FLOOR = 0.95

#: op-count gauges that must match the committed baseline exactly
OP_GAUGES = ("graph_step_ops", "graph_eval_ops", "graph_val_ops")


def _setup():
    from repro.datasets import load_dataset, train_val_test_split
    from repro.pdk.params import ActivationKind
    from repro.power.surrogate import get_cached_surrogate

    data = load_dataset(DATASET)
    split = train_val_test_split(data, seed=0)
    af = get_cached_surrogate(ActivationKind.TANH, n_q=800, epochs=60)
    neg = get_cached_surrogate("negation", n_q=500, epochs=60)
    return data, split, af, neg


def _make_net(data, af, neg, seed):
    import numpy as np

    from repro.circuits import PNCConfig, PrintedNeuralNetwork
    from repro.pdk.params import ActivationKind

    return PrintedNeuralNetwork(
        data.n_features, data.n_classes, PNCConfig(kind=ActivationKind.TANH),
        np.random.default_rng(seed), af, neg,
    )


def _hist_mean_ms(delta: dict, name: str) -> float | None:
    hist = delta.get(name)
    if not isinstance(hist, dict) or not hist.get("count"):
        return None
    return hist["sum"] / hist["count"] * 1e3


def _train_once(capture: bool, data, split, af, neg, budget: float) -> dict:
    from repro.observability.metrics import get_registry, snapshot_delta
    from repro.training import TrainerSettings, train_power_constrained

    settings = TrainerSettings(epochs=EPOCHS, patience=EPOCHS, capture_graph=capture)
    net = _make_net(data, af, neg, seed=1)
    registry = get_registry()
    before = registry.snapshot()
    t0 = time.perf_counter()
    result = train_power_constrained(
        net, split, power_budget=budget, mu=5.0, settings=settings
    )
    total_s = time.perf_counter() - t0
    delta = snapshot_delta(before, registry.snapshot())
    stats = {
        "mode": "replay" if capture else "eager",
        "total_s": total_s,
        "step_time_mean_ms": _hist_mean_ms(delta, "epoch_step_time_s"),
        "eval_time_mean_ms": _hist_mean_ms(delta, "epoch_eval_time_s"),
        "replay_epochs": int(delta.get("graph_replay_epochs", 0)),
        "recaptures": int(delta.get("graph_recapture_total", 0)),
        "capture_fallbacks": int(delta.get("graph_capture_fallbacks", 0)),
    }
    if capture:
        for gauge in OP_GAUGES:
            stats[gauge] = int(registry.gauge(gauge).value)
    traces = {
        "loss": result.loss_trace,
        "power": result.power_trace,
        "multiplier": result.multiplier_trace,
        "val_accuracy": result.val_accuracy_trace,
    }
    return {"stats": stats, "traces": traces,
            "test_accuracy": result.test_accuracy, "power_w": result.power}


def _bench_disabled_overhead(pairs: int = 21, replays: int = 300) -> dict:
    """A/B the tracing-disabled ``replay_forward`` against the bare loop.

    The only cost tracing may add to an untraced replay is the
    ``timings is None`` branch; this measures it directly by re-running
    one captured graph's schedule through ``replay_forward()`` and through
    an inlined copy of the pre-tracing loop.  Estimator: the two sides run
    back to back in each pair, and the reported ratio is the *median* of
    the per-pair ratios — adjacent-in-time pairing cancels the machine
    noise (frequency scaling, co-tenants) that makes min-of-trials flaky.
    """
    import statistics

    import numpy as np

    from repro.autograd.graph import _MODE_UFUNC, capture_forward
    from repro.autograd.tensor import Tensor

    rng = np.random.default_rng(0)
    w1 = Tensor(rng.normal(size=(16, 24)))
    w2 = Tensor(rng.normal(size=(24, 8)))
    x = Tensor(rng.normal(size=(64, 16)))

    def forward(inp):
        return ((inp @ w1).tanh() @ w2).sum()

    graph = capture_forward(forward, x)
    replay = graph.replay_forward

    def bare_replay(g):
        # Verbatim copy of the pre-tracing replay_forward body: same
        # attribute lookup, same loop — minus the ``timings`` branch.
        for mode, fwd, srcs, out in g._schedule:
            if mode == _MODE_UFUNC:
                fwd(*[s.data for s in srcs], out=out)
            else:
                result = fwd(*[s.data for s in srcs])
                if result is not out:
                    np.copyto(out, result, casting="unsafe")

    def bare_loop():
        bare_replay(graph)

    def timed(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(replays):
            fn()
        return time.perf_counter() - t0

    def paired_trial() -> float:
        """One trial: single calls alternated A/B/A/B in a tight loop.

        Pairing at the single-call level (~tens of µs apart) means both
        sides see the same instantaneous machine state; summing over many
        alternations averages out the per-call timer jitter.
        """
        t_bare = t_disabled = 0.0
        clock = time.perf_counter
        for _ in range(replays):
            t0 = clock()
            bare_loop()
            t1 = clock()
            replay()
            t2 = clock()
            replay()
            t3 = clock()
            bare_loop()
            t4 = clock()
            t_bare += (t1 - t0) + (t4 - t3)
            t_disabled += (t2 - t1) + (t3 - t2)
        return t_disabled / t_bare

    timed(bare_loop), timed(replay)  # warm up
    ratios = [paired_trial() for _ in range(pairs)]
    return {
        "pairs": pairs,
        "replays": replays,
        "n_ops": graph.n_ops,
        "disabled_overhead_ratio": statistics.median(ratios),
    }


def _train_traced(data, split, af, neg, budget: float) -> tuple[dict, float | None]:
    """One replay-mode training under --trace; returns (run, min coverage)."""
    from repro.observability.tracing import (
        disable_tracing,
        enable_tracing,
        get_kernel_profiler,
        get_tracer,
    )

    enable_tracing()
    try:
        traced = _train_once(True, data, split, af, neg, budget)
        kernels = get_kernel_profiler().as_json()
    finally:
        disable_tracing()
        get_tracer().reset()
        get_kernel_profiler().reset()
    coverages = [
        entry["attributed_s"] / entry["wall_s"]
        for entry in kernels["labels"].values()
        if entry["wall_s"] > 0
    ]
    return traced, (min(coverages) if coverages else None)


def measure() -> dict:
    from repro.training import TrainerSettings, train_unconstrained

    data, split, af, neg = _setup()
    reference = train_unconstrained(
        _make_net(data, af, neg, seed=0), split,
        settings=TrainerSettings(epochs=EPOCHS, patience=EPOCHS),
    )
    budget = BUDGET_FRACTION * max(reference.power_trace)

    eager = _train_once(False, data, split, af, neg, budget)
    replay = _train_once(True, data, split, af, neg, budget)
    traced, kernel_coverage = _train_traced(data, split, af, neg, budget)

    identical = eager["traces"] == replay["traces"]
    eager_ms = eager["stats"]["step_time_mean_ms"]
    replay_ms = replay["stats"]["step_time_mean_ms"]
    return {
        "benchmark": "training",
        "command": f"python -m repro.cli train {DATASET} --epochs {EPOCHS} --profile",
        "dataset": DATASET,
        "epochs": EPOCHS,
        "budget_fraction": BUDGET_FRACTION,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "eager": eager["stats"],
        "replay": replay["stats"],
        "step_time_speedup": eager_ms / replay_ms if replay_ms else None,
        "eval_time_speedup": (
            eager["stats"]["eval_time_mean_ms"] / replay["stats"]["eval_time_mean_ms"]
            if replay["stats"]["eval_time_mean_ms"] else None
        ),
        "traces_bit_identical": identical,
        "tracing": {
            "traced_traces_bit_identical": replay["traces"] == traced["traces"],
            "kernel_coverage_min": kernel_coverage,
            "disabled_overhead": _bench_disabled_overhead(),
        },
    }


def check(fresh: dict) -> int:
    """Gate a fresh measurement against the committed baseline; 0 = pass."""
    if not OUT.exists():
        print(f"FAIL: no baseline {OUT.name}; run without --check first", file=sys.stderr)
        return 1
    baseline = json.loads(OUT.read_text())
    failures: list[str] = []

    if not fresh["traces_bit_identical"]:
        failures.append("eager and replay traces diverged (bit-identity broken)")

    for gauge in OP_GAUGES:
        was, now = baseline["replay"].get(gauge), fresh["replay"].get(gauge)
        if was is not None and now != was:
            failures.append(f"op-count regression: {gauge} {was} -> {now}")

    tracing = fresh.get("tracing") or {}
    if not tracing.get("traced_traces_bit_identical", True):
        failures.append("--trace training diverged from the untraced run (bit-identity broken)")
    coverage = tracing.get("kernel_coverage_min")
    if coverage is not None and coverage < KERNEL_COVERAGE_FLOOR:
        failures.append(
            f"kernel attribution covers {coverage:.1%} of replay wall "
            f"(< {KERNEL_COVERAGE_FLOOR:.0%} floor)"
        )
    overhead = (tracing.get("disabled_overhead") or {}).get("disabled_overhead_ratio")
    if overhead is not None:
        if overhead > TRACING_OVERHEAD_TOLERANCE:
            failures.append(
                f"tracing-disabled replay path costs {(overhead - 1):.1%} over the "
                f"bare loop (> {TRACING_OVERHEAD_TOLERANCE - 1:.0%} gate)"
            )
        else:
            suffix = f", kernel coverage {coverage:.1%}" if coverage is not None else ""
            print(f"tracing-disabled overhead {(overhead - 1):+.1%} "
                  f"(gate {TRACING_OVERHEAD_TOLERANCE - 1:.0%}){suffix} — ok")

    base_speedup, now_speedup = baseline.get("step_time_speedup"), fresh.get("step_time_speedup")
    if base_speedup and now_speedup:
        floor = base_speedup / WALL_TIME_TOLERANCE
        if now_speedup < floor:
            failures.append(
                f"wall-time regression: step speedup {now_speedup:.2f}x < "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x / {WALL_TIME_TOLERANCE})"
            )
        else:
            print(f"step speedup {now_speedup:.2f}x (baseline {base_speedup:.2f}x, "
                  f"floor {floor:.2f}x) — ok")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_training.json instead of rewriting it")
    args = parser.parse_args()

    payload = measure()
    print(json.dumps(payload, indent=2, default=float))
    if args.check:
        return check(payload)
    OUT.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
