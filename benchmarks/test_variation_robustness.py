"""Extension — Monte-Carlo process-variation robustness of trained circuits.

pPDK [29], the technology the paper simulates with, is a *variability* model
for printed EGTs; any circuit claimed deployable must survive printing
scatter.  This benchmark trains one budgeted circuit, then Monte-Carlo
samples printed instances at increasing variation severity and reports
accuracy/power spreads and parametric yield.

Asserted shape: yield decreases monotonically (within noise) as variation
grows, and the nominal corner matches the trained result.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import benchmark_config, run_once
from repro.evaluation.experiments import dataset_split, make_network, unconstrained_max_power
from repro.evaluation.montecarlo import run_monte_carlo
from repro.pdk.params import ActivationKind
from repro.pdk.variation import VariationSpec
from repro.training import train_power_constrained

DATASET = "seeds"
KIND = ActivationKind.RELU
SIGMA_SCALES = (0.5, 1.0, 2.0)
N_SAMPLES = 60


def test_variation_robustness(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        budget = 0.6 * max_power
        net = make_network(DATASET, KIND, config.seed + 13, config)
        trained = train_power_constrained(
            net, split, power_budget=budget, mu=config.mu,
            mu_growth=config.mu_growth, warmup_epochs=config.warmup_epochs,
            settings=config.trainer_settings(),
        )
        net.eval()
        reports = {}
        for scale in SIGMA_SCALES:
            reports[scale] = run_monte_carlo(
                net, split.x_test, split.y_test,
                VariationSpec().scaled(scale),
                n_samples=N_SAMPLES, seed=7,
                power_budget=budget, accuracy_floor=0.5,
            )
        return budget, trained, reports

    budget, trained, reports = run_once(benchmark, build)

    lines = [
        f"trained: acc {trained.test_accuracy * 100:.1f}%, P {trained.power * 1e3:.4f} mW, "
        f"budget {budget * 1e3:.4f} mW"
    ]
    for scale, report in reports.items():
        lines.append(f"--- variation x{scale} ---")
        lines.append(report.summary())
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("variation_output.txt").write_text(text)

    nominal = reports[SIGMA_SCALES[0]]
    assert nominal.nominal_accuracy > 0.5  # trained circuit works

    # Spread grows with severity.
    assert reports[2.0].power_std >= reports[0.5].power_std
    # Yield does not improve as variation worsens (small-sample slack).
    assert reports[2.0].parametric_yield <= reports[0.5].parametric_yield + 0.1
