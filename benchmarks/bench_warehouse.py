"""Measure index-backed vs scan-backed `runs list`; write ``BENCH_warehouse.json``.

Builds a synthetic registry of ``N_RUNS`` run directories (manifest +
a ``N_EPOCHS``-epoch event timeline each, statuses mixed) and times the
read path both ways in one process:

- **scan**: ``load_summaries`` with no ``index.db`` — every query re-walks
  the tree and re-parses every ``manifest.json`` and ``events.jsonl``;
- **index**: the same call after ``Warehouse.sync()`` built the SQLite
  index — each query is an incremental sync (stat-only when nothing
  changed) plus one SQL read.

Reported numbers:

- queries/s for both modes and their ratio (``index_vs_scan``) — the
  number the PR's >=10x warehouse claim is about;
- one-time ``sync_s`` (full index build) to keep the amortization honest;
- **byte-identity**: ``render_runs_table`` over the index-backed summaries
  must equal the scan-backed table exactly (the warehouse's read contract).

Modes:

    PYTHONPATH=src python benchmarks/bench_warehouse.py           # measure + write
    PYTHONPATH=src python benchmarks/bench_warehouse.py --check   # CI regression gate

``--check`` re-measures on the current host and fails (exit 1) when

- the index-backed table is not byte-identical to the scan-backed table;
- ``index_vs_scan`` falls below the absolute 5.0x floor, or below
  baseline/2 (ratios keep the gate host-independent; CI boxes are noisy,
  so the relative band is wide).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "BENCH_warehouse.json"

N_RUNS = 500
#: Epochs per synthetic trajectory.  The paper's training default is 300
#: epochs; 60 keeps registry build time short while staying scan-honest.
N_EPOCHS = 60
SCAN_QUERIES = 3
INDEX_QUERIES = 50
MIN_SPEEDUP = 5.0
RATIO_TOLERANCE = 2.0

STATUSES = ("completed", "completed", "completed", "failed", "running")


def _build_registry(base: Path) -> None:
    base.mkdir(parents=True)
    t0 = time.time() - N_RUNS * 60.0
    for i in range(N_RUNS):
        run_id = f"run-{i:04d}"
        directory = base / run_id
        directory.mkdir()
        created = t0 + i * 60.0
        status = STATUSES[i % len(STATUSES)]
        manifest = {
            "schema_version": 1,
            "run_id": run_id,
            "command": "train" if i % 3 else "sweep",
            "config": {"dataset": "iris", "seed": i % 7, "budget_fraction": 0.2 + (i % 8) / 10},
            "seed": i % 7,
            "git_sha": "bench",
            "created_ts": created,
            "created": "2026-01-01T00:00:00+00:00",
            "status": status,
            "exit_code": 0 if status == "completed" else 1,
            "duration_s": 12.5,
        }
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with open(directory / "events.jsonl", "w", encoding="utf-8") as fh:
            for epoch in range(N_EPOCHS):
                event = {
                    "type": "epoch", "ts": created + epoch, "epoch": epoch,
                    "loss": 1.0 / (epoch + 1), "power_w": 1e-3 + i * 1e-6,
                    "val_accuracy": 0.5 + 0.4 * epoch / N_EPOCHS,
                    "feasible": True, "lr": 0.1, "phase": "constrained",
                    "multiplier": 0.1 * epoch,
                }
                fh.write(json.dumps(event, separators=(",", ":")) + "\n")


def measure() -> dict:
    from repro.observability.runs import render_runs_table
    from repro.observability.warehouse import Warehouse, load_summaries

    with tempfile.TemporaryDirectory() as tmp_dir:
        base = Path(tmp_dir) / "runs"
        _build_registry(base)

        # Scan path: no index.db exists yet, so load_summaries walks the tree.
        t0 = time.perf_counter()
        for _ in range(SCAN_QUERIES):
            scan_summaries, used_index = load_summaries(base)
        scan_s = (time.perf_counter() - t0) / SCAN_QUERIES
        assert not used_index, "index.db appeared before the scan measurement"
        scan_table = render_runs_table(base, summaries=scan_summaries)

        # One-time index build (amortized over every later query).
        t0 = time.perf_counter()
        with Warehouse(base) as warehouse:
            report = warehouse.sync(full=True)
        sync_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(INDEX_QUERIES):
            index_summaries, used_index = load_summaries(base)
        index_s = (time.perf_counter() - t0) / INDEX_QUERIES
        assert used_index, "load_summaries ignored the freshly built index"
        index_table = render_runs_table(base, summaries=index_summaries)

        return {
            "benchmark": "warehouse",
            "command": "python -m repro.cli runs list",
            "registry": {"runs": N_RUNS, "epochs_per_run": N_EPOCHS,
                         "indexed": report.indexed},
            "host": {
                "cpu_count": os.cpu_count() or 1,
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "scan": {"queries": SCAN_QUERIES, "seconds_per_query": scan_s},
            "index": {"queries": INDEX_QUERIES, "seconds_per_query": index_s,
                      "sync_s": sync_s},
            "index_vs_scan": scan_s / index_s,
            "tables_byte_identical": index_table == scan_table,
        }


def check(fresh: dict) -> int:
    """Gate a fresh measurement against the committed baseline; 0 = pass."""
    if not OUT.exists():
        print(f"FAIL: no baseline {OUT.name}; run without --check first", file=sys.stderr)
        return 1
    baseline = json.loads(OUT.read_text())
    failures: list[str] = []

    if not fresh["tables_byte_identical"]:
        failures.append("index-backed runs table != scan-backed table (read contract broken)")

    ratio = fresh["index_vs_scan"]
    base_ratio = baseline.get("index_vs_scan")
    floor = MIN_SPEEDUP
    if base_ratio:
        floor = max(floor, base_ratio / RATIO_TOLERANCE)
    if ratio < floor:
        failures.append(
            f"speedup regression: index_vs_scan {ratio:.1f}x < {floor:.1f}x "
            f"(baseline {base_ratio and f'{base_ratio:.1f}x'}, "
            f"absolute floor {MIN_SPEEDUP}x)"
        )
    else:
        print(f"index_vs_scan {ratio:.1f}x (floor {floor:.1f}x) — ok")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_warehouse.json instead of rewriting it")
    args = parser.parse_args()

    payload = measure()
    print(json.dumps(payload, indent=2, default=float))
    if args.check:
        return check(payload)
    OUT.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
