"""E3 — Fig. 5: penalty-based Pareto front vs single-run AL optima (p-tanh).

The paper's claim: the augmented Lagrangian reaches, in ONE run per budget,
solutions competitive with a Pareto front that costs the baseline hundreds
of runs.  Asserted shape:

- every feasible AL point is at most a few accuracy-points below the best
  front accuracy available within the same power budget (often above it),
- the run-count asymmetry is what the paper says it is (sweep runs ≫ AL
  runs).

Scale: 6 α values × 2 seeds by default (paper: 50 × 10); REPRO_FULL=1
restores the full sweep.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from benchmarks.conftest import benchmark_config, run_once
from repro.evaluation.experiments import run_pareto_comparison, full_scale
from repro.evaluation.reporting import render_fig5_rows
from repro.evaluation.figures import fig5_canvas
from repro.training.pareto import front_accuracy_at_power
from repro.pdk.params import ActivationKind

FIG5_DATASET = "seeds"


def test_fig5(benchmark):
    config = benchmark_config()
    n_alphas, n_seeds = (50, 10) if full_scale() else (6, 2)

    def build():
        return run_pareto_comparison(
            FIG5_DATASET,
            kind=ActivationKind.TANH,
            n_alphas=n_alphas,
            n_seeds=n_seeds,
            config=config,
        )

    comparison = run_once(benchmark, build)
    text = render_fig5_rows(comparison)
    budgets_mw = [r.budget_w * 1e3 for r in comparison.al_records]
    canvas = fig5_canvas(comparison.front, comparison.al_points(), budgets_mw)
    print("\n" + text)
    print(canvas)
    Path(__file__).parent.joinpath("fig5_output.txt").write_text(text + "\n\n" + canvas)

    # Run-count asymmetry: the baseline needs a sweep, AL needs one run per
    # budget.
    assert comparison.sweep.n_runs == n_alphas * n_seeds
    al_runs = len(comparison.al_records)
    assert comparison.sweep.n_runs >= 3 * al_runs

    # Competitiveness: feasible AL points sit near or above the front at
    # their budget.
    feasible = [r for r in comparison.al_records if r.feasible]
    assert feasible, "no feasible AL runs"
    gaps = []
    for record in feasible:
        front_best = front_accuracy_at_power(comparison.front, record.budget_w)
        if front_best == float("-inf"):
            # The sweep produced nothing this cheap: AL wins by default.
            gaps.append(-1.0)
            continue
        gaps.append(front_best - record.accuracy)
    worst_gap = max(gaps)
    print(f"worst accuracy gap to the front at same budget: {worst_gap * 100:.1f} points")
    # "often matching or surpassing the Pareto front": allow a bounded gap.
    assert worst_gap <= 0.25
    assert min(gaps) <= 0.05  # at least one budget matches/beats the front
