"""Measure the PR's two performance claims and write ``BENCH_parallel.json``.

1. **Parallel experiment engine** — a reduced 4-dataset grid through
   ``run_dataset_grid`` serially and at ``--jobs 4``, wall-clock compared.
   The speedup is bounded by the host's core count (recorded as
   ``cpu_count``): on a single-core container the pool only adds process
   overhead and the honest measured speedup is ~1×; on a 4-core host the
   same command line approaches 4×.
2. **Vectorized power path** — a 40-epoch iris training run with
   ``--profile`` (the exact command of ``BENCH_observability.json``),
   comparing ``surrogate.predict_tensor`` span call counts and wall time
   against that recorded PR-1 baseline: the batched path issues 2 stacked
   surrogate evaluations per forward instead of 4 per-layer ones.

Run from the repo root:

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GRID_DATASETS = ["iris", "seeds", "vertebral_2c", "acute_inflammation"]
GRID_JOBS = 4
TRAIN_EPOCHS = 40


def _grid_config():
    from repro.evaluation.experiments import ExperimentConfig

    # Small but real runs; surrogate resolution matches the CLI so the
    # disk cache is shared and fitting cost drops out of both timings.
    return ExperimentConfig(
        epochs=6, patience=6, warmup_epochs=2, anneal_epochs=3,
        surrogate_n_q=800, surrogate_epochs=60, finetune=False, seed=0,
    )


def bench_grid() -> dict:
    from repro.evaluation.experiments import run_dataset_grid
    from repro.pdk.params import ActivationKind

    kwargs = dict(
        dataset_names=GRID_DATASETS,
        kinds=(ActivationKind.TANH,),
        budget_fractions=(0.4,),
        config=_grid_config(),
    )
    # warm the surrogate disk cache so neither timing pays the one-off fit
    run_dataset_grid(dataset_names=["iris"], kinds=(ActivationKind.TANH,),
                     budget_fractions=(0.4,), config=_grid_config())

    t0 = time.perf_counter()
    serial = run_dataset_grid(n_jobs=1, **kwargs)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_dataset_grid(n_jobs=GRID_JOBS, **kwargs)
    parallel_s = time.perf_counter() - t0

    identical = all(
        a.accuracy == b.accuracy and a.power_w == b.power_w
        and a.device_count == b.device_count
        for a, b in zip(serial, parallel)
    )
    cpu_count = os.cpu_count() or 1
    return {
        "datasets": GRID_DATASETS,
        "n_jobs": GRID_JOBS,
        "cpu_count": cpu_count,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else None,
        "results_bit_identical": identical,
        "note": (
            "speedup is bounded by cpu_count; on a single-core host the "
            "pool can only add process overhead — run on >=4 cores to "
            "observe the >=2.5x target"
        ),
    }


def _train_spans(log_path: Path) -> list[dict]:
    from repro.observability.events import read_events

    cmd = [
        sys.executable, "-m", "repro.cli", "train", "iris",
        "--epochs", str(TRAIN_EPOCHS), "--log-json", str(log_path), "--profile",
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    # exit code 1 means the run finished but infeasible — fine for profiling
    proc = subprocess.run(cmd, cwd=REPO, env=env, capture_output=True)
    if proc.returncode not in (0, 1):
        raise RuntimeError(f"train failed ({proc.returncode}): {proc.stderr.decode()[-500:]}")
    events = read_events(log_path)
    profile = next(e for e in reversed(events) if e["type"] == "profile")
    return profile["spans"]


def _surrogate_totals(spans: list[dict]) -> dict:
    calls = sum(s["count"] for s in spans if s["path"].endswith("surrogate.predict_tensor"))
    total = sum(s["total_s"] for s in spans if s["path"].endswith("surrogate.predict_tensor"))
    forwards = sum(
        s["count"] for s in spans if s["path"].endswith("pnc.forward_with_power")
    )
    return {"predict_tensor_calls": calls, "predict_tensor_total_s": total,
            "forward_with_power_calls": forwards}


def bench_vectorized() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        spans = _train_spans(Path(tmp) / "run.jsonl")
    now = _surrogate_totals(spans)

    baseline_path = REPO / "BENCH_observability.json"
    baseline = None
    if baseline_path.exists():
        baseline_spans = json.loads(baseline_path.read_text())["spans"]
        baseline = _surrogate_totals(baseline_spans)

    result = {
        "command": f"python -m repro.cli train iris --epochs {TRAIN_EPOCHS} --profile",
        "vectorized": now,
    }
    if baseline:
        result["baseline_pr1"] = baseline
        if now["forward_with_power_calls"]:
            result["calls_per_forward"] = now["predict_tensor_calls"] / now["forward_with_power_calls"]
        if baseline["predict_tensor_total_s"]:
            result["span_time_ratio"] = (
                now["predict_tensor_total_s"] / baseline["predict_tensor_total_s"]
            )
    return result


def bench_batched_micro() -> dict:
    """Controlled same-process timing: 2 per-layer surrogate calls vs one
    batched call on identical inputs (the cross-session span comparison in
    :func:`bench_vectorized` is subject to machine-load noise; this is not).
    """
    import numpy as np

    from repro.autograd.tensor import Tensor
    from repro.pdk.params import ActivationKind
    from repro.power.surrogate import get_cached_surrogate

    af = get_cached_surrogate(ActivationKind.TANH, n_q=800, epochs=60)
    rng = np.random.default_rng(0)
    center = af.space.center()
    g1 = ([Tensor(np.array(v)) for v in center], Tensor(rng.random((256, 1))))
    g2 = ([Tensor(np.array(v * 0.95)) for v in center], Tensor(rng.random((256, 1))))

    def timed(fn, n=300):
        fn()  # warm
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - t0) / n * 1e3

    def separate():
        s = af.predict_tensor(*g1).sum() + af.predict_tensor(*g2).sum()
        s.backward()

    def batched():
        outs = af.predict_tensor_batched([g1, g2])
        (outs[0].sum() + outs[1].sum()).backward()

    separate_ms = timed(separate)
    batched_ms = timed(batched)
    return {
        "inputs": "2 groups x 256 rows, fwd+bwd, 300 reps",
        "separate_calls_ms": separate_ms,
        "batched_call_ms": batched_ms,
        "batched_over_separate": batched_ms / separate_ms,
    }


def main() -> None:
    payload = {
        "benchmark": "parallel",
        "grid": bench_grid(),
        "vectorized_power_path": bench_vectorized(),
        "batched_surrogate_microbench": bench_batched_micro(),
    }
    out = REPO / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
