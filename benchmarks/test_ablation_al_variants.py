"""Ablation — AL multiplier mechanics vs plain quadratic penalty.

DESIGN.md ablation 1: does the smoothed multiplier (λ' updates, Eq. 4)
actually matter, or would the quadratic term μ/2·max(0, c)² alone (a pure
exterior penalty with no dual variable) do as well?  The classic result:
without the multiplier the quadratic penalty needs μ → ∞ for exact
feasibility, so at matched finite μ the AL variant should satisfy the hard
budget at least as often.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from benchmarks.conftest import benchmark_config, run_once
from repro.autograd.tensor import Tensor
from repro.evaluation.experiments import dataset_split, make_network, unconstrained_max_power
from repro.pdk.params import ActivationKind
from repro.training import train_model, train_power_constrained

DATASET = "iris"
KIND = ActivationKind.RELU


@dataclass
class QuadraticPenaltyObjective:
    """μ/2·max(0, c)² with NO multiplier update (the ablated variant)."""

    power_budget: float
    mu: float = 5.0
    warmup_epochs: int = 60
    feasibility_rtol: float = 1e-3

    def constraint(self, power: Tensor) -> Tensor:
        return (power - self.power_budget) * (1.0 / self.power_budget)

    def training_loss(self, loss: Tensor, power: Tensor, epoch: int) -> Tensor:
        if epoch < self.warmup_epochs:
            return loss
        c = self.constraint(power)
        violation = c.relu()
        return loss + violation * violation * (0.5 * self.mu)

    def on_epoch_end(self, power_value: float, epoch: int) -> None:
        return None

    def is_feasible(self, power_value: float) -> bool:
        return power_value <= self.power_budget * (1.0 + self.feasibility_rtol)


def test_al_vs_quadratic_penalty(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        budget = 0.3 * max_power
        results = {}
        for seed_offset in range(3):
            seed = config.seed + 100 * seed_offset + 1
            al_net = make_network(DATASET, KIND, seed, config)
            results.setdefault("al", []).append(
                train_power_constrained(
                    al_net, split, power_budget=budget, mu=config.mu,
                    mu_growth=config.mu_growth, warmup_epochs=config.warmup_epochs,
                    settings=config.trainer_settings(),
                )
            )
            quad_net = make_network(DATASET, KIND, seed, config)
            objective = QuadraticPenaltyObjective(
                power_budget=budget, mu=config.mu, warmup_epochs=config.warmup_epochs
            )
            results.setdefault("quadratic", []).append(
                train_model(quad_net, split, objective, settings=config.trainer_settings())
            )
        return budget, results

    budget, results = run_once(benchmark, build)

    lines = [f"hard budget: {budget * 1e3:.4f} mW"]
    feasibility = {}
    for variant, runs in results.items():
        feasible = sum(r.feasible for r in runs)
        feasibility[variant] = feasible
        best = max((r.test_accuracy for r in runs if r.feasible), default=0.0)
        lines.append(
            f"{variant:10s}: feasible {feasible}/{len(runs)}, "
            f"best feasible acc {best * 100:.1f}%, "
            f"powers {[round(r.power * 1e3, 4) for r in runs]} mW"
        )
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("ablation_al_output.txt").write_text(text)

    # The multiplier variant must be at least as reliably feasible.
    assert feasibility["al"] >= feasibility["quadratic"]
    assert feasibility["al"] >= 2  # of 3
