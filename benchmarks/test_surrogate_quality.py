"""E7 — surrogate power model quality (§III-A).

Fits the P^AF surrogate for each activation function (and P^N for the
negation circuit) on Sobol-sampled circuit-simulation data and reports
R² / MAE in log-power space.  Includes the sample-budget sensitivity
ablation DESIGN.md calls out: quality as a function of the Sobol budget.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import run_once
from repro.evaluation.experiments import full_scale
from repro.pdk.params import ActivationKind
from repro.power.dataset import generate_power_dataset, generate_negation_dataset
from repro.power.surrogate import fit_surrogate


def test_surrogate_quality(benchmark):
    n_q = 1200 if full_scale() else 600
    epochs = 120 if full_scale() else 60

    def build():
        reports = {}
        for kind in ActivationKind:
            dataset = generate_power_dataset(kind, n_q=n_q, seed=0)
            model = fit_surrogate(dataset, epochs=epochs, seed=0, label=kind.value)
            reports[kind.value] = model.report
        neg_dataset = generate_negation_dataset(n_q=n_q // 2, seed=0)
        reports["negation"] = fit_surrogate(neg_dataset, epochs=epochs, seed=0).report
        return reports

    reports = run_once(benchmark, build)

    lines = [f"{'circuit':16s} {'R2':>8s} {'test MAE(log10 P)':>18s} {'samples':>8s}"]
    for name, report in reports.items():
        lines.append(f"{name:16s} {report.test_r2:8.4f} {report.test_mae_log:18.4f} {report.n_samples:8d}")
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("surrogate_quality_output.txt").write_text(text)

    for name, report in reports.items():
        assert report.test_r2 > 0.75, f"{name} surrogate underfits (R2={report.test_r2:.3f})"
        assert report.test_mae_log < 0.6, f"{name} surrogate MAE too high"


def test_surrogate_sample_budget_ablation(benchmark):
    """Quality vs Sobol budget: more simulations → monotone-ish better fit."""
    budgets = [100, 400, 1200]

    def build():
        scores = []
        for n_q in budgets:
            dataset = generate_power_dataset(ActivationKind.TANH, n_q=n_q, seed=0)
            model = fit_surrogate(dataset, epochs=50, seed=0)
            scores.append(model.report.test_r2)
        return scores

    scores = run_once(benchmark, build)
    text = "\n".join(f"n_q={n:5d}: R2={r:.4f}" for n, r in zip(budgets, scores))
    print("\n" + text)
    Path(__file__).parent.joinpath("surrogate_ablation_output.txt").write_text(text)
    assert scores[-1] > scores[0] - 0.02  # no degradation with more data
    assert scores[-1] > 0.75
