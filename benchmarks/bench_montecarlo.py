"""Measure vectorized vs serial Monte-Carlo throughput; write ``BENCH_montecarlo.json``.

Builds an analytic-mode network, samples 256 printed instances (the
:class:`~repro.pdk.variation.VariationSpec` defaults), and evaluates them
two ways in one process:

- **serial**: :func:`~repro.evaluation.montecarlo.evaluate_instances` — one
  eager forward per instance, perturbing the network in place (the
  pre-vectorization path, still the bit-identity reference);
- **vectorized**: :func:`~repro.evaluation.montecarlo.evaluate_instances_vectorized`
  — instances stacked 64 per chunk and replayed through the captured-graph
  :class:`~repro.circuits.ensemble.EnsembleProgram`.

Reported numbers:

- instances/s for both paths and their ratio (``vectorized_vs_serial``,
  measured warm — the program cache hit, the steady state of every run past
  the first chunk shape) — the number the PR's >=5x claim is about;
- ``cold_vectorized_vs_serial`` — first-call ratio including the one-time
  graph capture, so the amortization cost stays visible;
- **bit-identity**: per-instance accuracies and powers from the stacked
  path must equal the serial loop exactly (the engine's contract).

Modes:

    PYTHONPATH=src python benchmarks/bench_montecarlo.py           # measure + write
    PYTHONPATH=src python benchmarks/bench_montecarlo.py --check   # CI regression gate

``--check`` re-measures on the current host and fails (exit 1) when

- vectorized and serial per-instance results are not bit-identical;
- the ensemble program fell back to eager execution (capture failed);
- ``vectorized_vs_serial`` falls below the absolute 3.0x floor.  Unlike
  the serving gate there is no baseline-relative clamp: the ratio's
  denominator (the serial per-instance loop) is Python-overhead bound and
  swings hard with host load, so a committed >=10x baseline would turn
  ordinary runner noise into false failures.  The committed baseline
  still records the measured >=5x headline number.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "BENCH_montecarlo.json"

IN_FEATURES = 4
N_CLASSES = 3
N_ROWS = 30
SEED = 7
SAMPLE_SEED = 11
N_INSTANCES = 256
INSTANCE_CHUNK = 64
MIN_VECTORIZED_SPEEDUP = 3.0


def _make_problem():
    import numpy as np

    from repro.circuits import PNCConfig, PrintedNeuralNetwork

    rng = np.random.default_rng(SEED)
    net = PrintedNeuralNetwork(
        IN_FEATURES, N_CLASSES,
        PNCConfig(power_mode="analytic"),
        rng,
    )
    net.eval()
    x = rng.uniform(-0.6, 0.6, size=(N_ROWS, IN_FEATURES))
    y = rng.integers(0, N_CLASSES, size=N_ROWS)
    return net, x, y


def _instance_rngs():
    import numpy as np

    seqs = np.random.SeedSequence(SAMPLE_SEED).spawn(N_INSTANCES)
    return [np.random.default_rng(seq) for seq in seqs]


def measure() -> dict:
    import numpy as np

    from repro.evaluation import montecarlo as mc
    from repro.pdk.variation import VariationSpec

    net, x, y = _make_problem()
    spec = VariationSpec()

    t0 = time.perf_counter()
    serial_acc, serial_pow = mc.evaluate_instances(net, x, y, spec, _instance_rngs())
    serial_s = time.perf_counter() - t0
    serial_inst_per_s = N_INSTANCES / serial_s

    # Cold: first call pays the one-time eager capture of the stacked graph.
    mc._PROGRAM_CACHE = None
    t0 = time.perf_counter()
    vec_acc, vec_pow = mc.evaluate_instances_vectorized(
        net, x, y, spec, _instance_rngs(), instance_chunk=INSTANCE_CHUNK
    )
    cold_s = time.perf_counter() - t0

    # Warm: the program cache hits — the steady state of a long Monte-Carlo
    # run and of every run after the first against the same trained network.
    t0 = time.perf_counter()
    vec_acc, vec_pow = mc.evaluate_instances_vectorized(
        net, x, y, spec, _instance_rngs(), instance_chunk=INSTANCE_CHUNK
    )
    warm_s = time.perf_counter() - t0
    warm_inst_per_s = N_INSTANCES / warm_s

    identical = bool(
        np.array_equal(serial_acc, vec_acc) and np.array_equal(serial_pow, vec_pow)
    )
    captured = mc._PROGRAM_CACHE is not None and mc._PROGRAM_CACHE[1].captured

    return {
        "benchmark": "montecarlo",
        "command": "python -m repro.cli montecarlo <dataset> --vectorized",
        "net": {"in_features": IN_FEATURES, "n_classes": N_CLASSES, "seed": SEED},
        "n_instances": N_INSTANCES,
        "instance_chunk": INSTANCE_CHUNK,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "serial": {
            "total_s": serial_s,
            "instances_per_s": serial_inst_per_s,
        },
        "vectorized_cold": {
            "total_s": cold_s,
            "instances_per_s": N_INSTANCES / cold_s,
        },
        "vectorized_warm": {
            "total_s": warm_s,
            "instances_per_s": warm_inst_per_s,
        },
        "vectorized_vs_serial": warm_inst_per_s / serial_inst_per_s,
        "cold_vectorized_vs_serial": (N_INSTANCES / cold_s) / serial_inst_per_s,
        "program_captured": bool(captured),
        "results_bit_identical": identical,
    }


def check(fresh: dict) -> int:
    """Gate a fresh measurement against the committed baseline; 0 = pass."""
    if not OUT.exists():
        print(f"FAIL: no baseline {OUT.name}; run without --check first", file=sys.stderr)
        return 1
    baseline = json.loads(OUT.read_text())
    failures: list[str] = []

    if not fresh["results_bit_identical"]:
        failures.append("vectorized and serial per-instance results diverged (bit-identity broken)")
    if not fresh["program_captured"]:
        failures.append("ensemble program fell back to eager execution (capture failed)")

    ratio = fresh["vectorized_vs_serial"]
    base_ratio = baseline.get("vectorized_vs_serial")
    if ratio < MIN_VECTORIZED_SPEEDUP:
        failures.append(
            f"throughput regression: vectorized_vs_serial {ratio:.2f}x < "
            f"{MIN_VECTORIZED_SPEEDUP}x floor "
            f"(committed baseline {base_ratio and f'{base_ratio:.2f}x'})"
        )
    else:
        print(
            f"vectorized_vs_serial {ratio:.2f}x "
            f"(floor {MIN_VECTORIZED_SPEEDUP}x, baseline "
            f"{base_ratio and f'{base_ratio:.2f}x'}) — ok"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_montecarlo.json instead of rewriting it")
    args = parser.parse_args()

    payload = measure()
    print(json.dumps(payload, indent=2, default=float))
    if args.check:
        return check(payload)
    OUT.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
