"""E4 — Fig. 3(c–f): surrogate power behaviour of the four AF circuits.

Sweeps each activation circuit over the input voltage range (the
"10 000 SPICE simulations" protocol at reduced count) and asserts the
qualitative behaviours the paper describes:

- **p-Clipped_ReLU**: power rises sharply near the turn-on threshold, then
  its *growth rate* collapses once the clamp engages (spike → stabilize),
- **p-ReLU**: smooth monotone increase with input voltage (unbounded),
- **p-sigmoid**: asymmetric power, higher demand at negative inputs,
- **p-tanh**: non-trivial input dependence with dissipation at both rails.

ASCII curves are written to ``fig3_output.txt``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.autograd.tensor import Tensor
from repro.evaluation.figures import fig3_power_curve
from repro.pdk.params import ActivationKind, design_space
from repro.pdk.transfer import TransferModel
from repro.power.sobol import sobol_sample_space

V_GRID = np.linspace(-1.0, 1.0, 41)
N_CONFIGS = 64  # Sobol configurations averaged per curve


def median_power_curve(kind: ActivationKind) -> np.ndarray:
    """Median power vs V_in over Sobol-sampled circuit configurations.

    For p-Clipped_ReLU the sweep is restricted to clamp-dominant designs
    (strong clamp transistor): the clipping power signature the paper plots
    belongs to circuits that actually clip — weak-clamp corners of the
    design space degenerate into plain followers.
    """
    space = design_space(kind)
    q = sobol_sample_space(space, N_CONFIGS, seed=11)
    if kind is ActivationKind.CLIPPED_RELU:
        # q layout: [R_d, R_s, W_1, L_1, W_c, L_c] — force a strong clamp.
        q[:, 4] = space.highs[4]
        q[:, 5] = space.lows[5]
    model = TransferModel(kind)
    q_cols = [Tensor(q[:, i].reshape(-1, 1)) for i in range(space.dimension)]
    _, power = model.output_and_power(Tensor(V_GRID.reshape(1, -1)), q_cols)
    grid = np.broadcast_to(power.data, (N_CONFIGS, V_GRID.size))
    return np.median(grid, axis=0)


def test_fig3_power_curves(benchmark):
    def build():
        return {kind: median_power_curve(kind) for kind in ActivationKind}

    curves = run_once(benchmark, build)

    output = []
    for kind, powers in curves.items():
        output.append(fig3_power_curve(V_GRID, powers, title=f"Fig.3 {kind.value} power"))
    text = "\n\n".join(output)
    print("\n" + text)
    Path(__file__).parent.joinpath("fig3_output.txt").write_text(text)

    relu = curves[ActivationKind.RELU]
    clipped = curves[ActivationKind.CLIPPED_RELU]
    sigmoid = curves[ActivationKind.SIGMOID]
    tanh = curves[ActivationKind.TANH]

    # p-ReLU: monotone non-decreasing power, large total rise.
    assert (np.diff(relu) >= -1e-12).all()
    assert relu[-1] > 50 * max(relu[0], 1e-15)

    # p-Clipped_ReLU: growth-rate spike near threshold, then slowdown.
    # Compare slope in the turn-on window vs the top of the range.
    slopes = np.diff(clipped) / np.diff(V_GRID)
    turn_on = slopes[(V_GRID[:-1] > 0.0) & (V_GRID[:-1] < 0.5)].max()
    tail = slopes[V_GRID[:-1] > 0.75].mean()
    assert turn_on > 0
    assert tail < turn_on  # stabilizes after the spike

    # p-sigmoid: asymmetric — more power at the negative extreme than at
    # the positive extreme of equal magnitude.
    assert sigmoid[0] != sigmoid[-1]
    negative_side = sigmoid[V_GRID <= -0.5].mean()
    positive_side = sigmoid[V_GRID >= 0.5].mean()
    print(
        f"p-sigmoid power: negative side {negative_side * 1e6:.3f} uW, "
        f"positive side {positive_side * 1e6:.3f} uW"
    )
    assert negative_side > positive_side

    # p-tanh: static dissipation at both rails (symmetric supplies), and
    # the curve is genuinely input-dependent.
    assert tanh.min() > 0
    assert tanh.max() > 1.2 * tanh.min()
