"""E5 — headline claims: accuracy-to-power ratio and single-run efficiency.

The paper: "For low-power scenarios (≈20 % of the original power), our
method demonstrates a 52× improvement in accuracy-to-power ratio over the
baseline.  At higher power budgets (≈80 %), it achieves a 59× improvement."
The baseline row (Table I right) pairs α=1 with the 20 % row and α=0.25
with the 80 % row; its accuracy-to-power ratio is poor because the
penalty objective, even at its strongest, leaves power high relative to
what the hard constraint enforces.

Reproduction finding: with a *well-conditioned* penalty baseline
(normalized reference power — unlike [13]'s raw-power penalty), the
baseline's accuracy-to-power ratio is competitive, so the 52×/59× magnitude
is an artifact of the baseline's conditioning.  What survives — and is
asserted here — is the operational core of the claim:

- the AL circuit is *feasible* at both prescribed budgets (hard guarantee),
- the penalty baseline cannot TARGET a budget: its delivered power lands
  far (>10 %) from the prescribed P̄ at both paired α values — which is
  precisely why the paper's baseline needs up to 150 runs per dataset to
  locate budget-compliant designs,
- the measured accuracy-to-power ratios are reported for the record.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from benchmarks.conftest import benchmark_config, run_once
from repro.evaluation.experiments import (
    dataset_split,
    make_network,
    run_budget_experiment,
    unconstrained_max_power,
)
from repro.evaluation.metrics import ratio_improvement
from repro.pdk.params import ActivationKind
from repro.training import train_penalty

DATASET = "seeds"
KIND = ActivationKind.CLIPPED_RELU  # the paper's low-power champion


def test_headline_accuracy_to_power(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        al = {
            fraction: run_budget_experiment(
                DATASET, KIND, fraction, config, max_power_w=max_power, split=split
            )
            for fraction in (0.2, 0.8)
        }
        # Baseline pairing of Table I: α=1 ↔ 20 %, α=0.25 ↔ 80 %.
        baseline = {}
        for fraction, alpha in ((0.2, 1.0), (0.8, 0.25)):
            net = make_network(DATASET, KIND, config.seed + 31, config)
            baseline[fraction] = train_penalty(
                net, split, alpha=alpha, settings=config.trainer_settings()
            )
        return al, baseline

    al, baseline = run_once(benchmark, build)

    lines = []
    improvements = {}
    for fraction in (0.2, 0.8):
        al_record = al[fraction]
        base = baseline[fraction]
        improvement = ratio_improvement(
            al_record.accuracy * 100.0,
            al_record.power_w * 1e3,
            base.test_accuracy * 100.0,
            base.power * 1e3,
        )
        improvements[fraction] = improvement
        lines.append(
            f"budget {int(fraction * 100)}%: AL acc {al_record.accuracy * 100:.1f}% @ "
            f"{al_record.power_w * 1e3:.4f} mW | baseline acc {base.test_accuracy * 100:.1f}% @ "
            f"{base.power * 1e3:.4f} mW | ratio improvement {improvement:.1f}x (paper: 52x/59x)"
        )
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("headline_output.txt").write_text(text)

    # Hard-constraint guarantee: AL is feasible at both budgets.
    assert al[0.2].feasible and al[0.8].feasible
    for fraction in (0.2, 0.8):
        assert al[fraction].power_w <= al[fraction].budget_w * 1.001

    # Budget-targeting failure of the baseline: its delivered power misses
    # the prescribed budget by a wide margin at both paired α values.
    for fraction in (0.2, 0.8):
        budget = al[fraction].budget_w
        baseline_power = baseline[fraction].power
        miss = abs(baseline_power - budget) / budget
        print(f"baseline power misses the {int(fraction*100)}% budget by {miss*100:.0f}%")
        assert miss > 0.10

    # Ratios are positive and recorded (magnitude is baseline-conditioning
    # dependent; see EXPERIMENTS.md E5).
    assert improvements[0.2] > 0 and improvements[0.8] > 0
