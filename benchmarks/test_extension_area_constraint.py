"""Extension — simultaneous power + device-count budgets.

The paper's future-work direction ("additional circuit components and
constraints") realized: a two-multiplier augmented Lagrangian enforcing a
hard power budget AND a hard printed-device budget.  Asserted shape:

- the dual-constrained run lands inside both budgets (when feasible),
- tightening the device budget monotonically reduces the device count of
  the returned circuit,
- accuracy degrades gracefully rather than collapsing.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import benchmark_config, run_once
from repro.evaluation.experiments import dataset_split, make_network, unconstrained_max_power
from repro.pdk.params import ActivationKind
from repro.training import TrainerSettings, train_power_area_constrained

DATASET = "iris"
KIND = ActivationKind.RELU


def test_power_area_constrained(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        max_power, reference = unconstrained_max_power(DATASET, KIND, config, split=split)
        reference_devices = reference.device_count
        budget = 0.6 * max_power
        rows = []
        for fraction in (1.0, 0.8, 0.6):
            device_budget = max(10, int(reference_devices * fraction))
            net = make_network(DATASET, KIND, config.seed + 9, config)
            result = train_power_area_constrained(
                net, split, power_budget=budget, device_budget=device_budget,
                warmup_epochs=config.warmup_epochs,
                settings=config.trainer_settings(),
            )
            rows.append((fraction, device_budget, net.device_count(), result))
        return budget, reference_devices, rows

    budget, reference_devices, rows = run_once(benchmark, build)

    lines = [f"power budget {budget * 1e3:.4f} mW; unconstrained devices {reference_devices}"]
    for fraction, device_budget, devices, result in rows:
        lines.append(
            f"device budget {device_budget:3d} ({fraction:.0%}): got {devices:3d} devices, "
            f"acc {result.test_accuracy * 100:5.1f}%, P {result.power * 1e3:.4f} mW, "
            f"feasible={result.feasible}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("extension_area_output.txt").write_text(text)

    # Tighter device budgets must not yield more devices.
    device_series = [devices for _, _, devices, _ in rows]
    assert device_series[-1] <= device_series[0]
    # Feasible runs sit inside both budgets.
    for _, device_budget, devices, result in rows:
        if result.feasible:
            assert result.power <= budget * 1.01
            assert devices <= device_budget * 1.01
    # No collapse to chance (3-class → 0.33) in the loosest setting.
    assert rows[0][3].test_accuracy > 0.45
