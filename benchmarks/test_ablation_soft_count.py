"""Ablation — straight-through vs pure-soft device counts (§III-B).

The paper backpropagates through the sigmoid-relaxed counts but reports
power with the hard indicator.  Two implementable variants:

- ``straight_through`` (default): hard forward value, soft backward —
  the training-time power *is* the reported power,
- ``soft``: the sigmoid value is used in the forward pass too — training
  optimizes a biased power estimate (a dead column still costs σ(-kτ) of a
  circuit), so the constraint is enforced against the wrong number.

Asserted shape: with straight-through counts the *hard* power respects the
budget whenever training says it does; with soft counts the reported hard
power can drift from the trained soft estimate (we measure the gap).
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import benchmark_config, run_once
from repro.circuits import PrintedNeuralNetwork, PNCConfig
from repro.datasets import load_dataset
from repro.evaluation.experiments import dataset_split, unconstrained_max_power, _surrogates
from repro.pdk.params import ActivationKind
from repro.training import train_power_constrained

import numpy as np

DATASET = "iris"
KIND = ActivationKind.RELU


def test_soft_vs_straight_through_counts(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)
    data = load_dataset(DATASET)
    af, neg = _surrogates(KIND, config)

    def build():
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        budget = 0.4 * max_power
        outcomes = {}
        for mode in ("straight_through", "soft"):
            pnc_config = PNCConfig(kind=KIND, count_mode=mode)
            net = PrintedNeuralNetwork(
                data.n_features, data.n_classes, pnc_config,
                np.random.default_rng(config.seed + 77), af, neg,
            )
            result = train_power_constrained(
                net, split, power_budget=budget, mu=config.mu,
                mu_growth=config.mu_growth, warmup_epochs=config.warmup_epochs,
                settings=config.trainer_settings(),
            )
            # Hard (indicator-based) power of the returned circuit:
            hard_net = PrintedNeuralNetwork(
                data.n_features, data.n_classes, PNCConfig(kind=KIND),
                np.random.default_rng(0), af, neg,
            )
            hard_net.load_state_dict(result.state)
            from repro.autograd.tensor import Tensor

            hard_power = hard_net.power_estimate(Tensor(split.x_train))
            outcomes[mode] = (result, hard_power, budget)
        return outcomes

    outcomes = run_once(benchmark, build)

    lines = []
    for mode, (result, hard_power, budget) in outcomes.items():
        gap = abs(hard_power - result.power) / budget
        lines.append(
            f"{mode:17s}: trained power {result.power * 1e3:.4f} mW, "
            f"hard power {hard_power * 1e3:.4f} mW, budget {budget * 1e3:.4f} mW, "
            f"|gap|/budget = {gap * 100:.2f}%, acc {result.test_accuracy * 100:.1f}%"
        )
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("ablation_soft_count_output.txt").write_text(text)

    st_result, st_hard, st_budget = outcomes["straight_through"]
    # Straight-through: the trained power IS the hard power (same indicator).
    assert abs(st_hard - st_result.power) / st_budget < 0.01
    if st_result.feasible:
        assert st_hard <= st_budget * 1.01
