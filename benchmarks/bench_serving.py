"""Measure batched vs single-row inference throughput; write ``BENCH_serving.json``.

Exports an analytic-mode network to a ``.pnz`` artifact, loads it back, and
drives the fixed-shape :class:`repro.serving.engine.InferenceEngine` two ways
in one process:

- **single-row**: one ``predict`` call per row — the worst case a serving
  process sees when requests never coalesce (every call pads a 1-row chunk
  to the captured micro-batch shape and replays the full graph for it);
- **batched**: 64-row ``predict`` calls — what the
  :class:`~repro.serving.batching.MicroBatcher` turns concurrent requests
  into.

Reported numbers:

- rows/s for both modes and their ratio (``batched_vs_single``) — the
  number the PR's >=3x batching claim is about;
- the captured graph's op count (``engine_n_ops``) — the structural
  fingerprint of the inference hot loop;
- **bit-identity**: the batched logits must equal the row-at-a-time logits
  exactly (the engine's grouping-invariance contract).

Modes:

    PYTHONPATH=src python benchmarks/bench_serving.py           # measure + write
    PYTHONPATH=src python benchmarks/bench_serving.py --check   # CI regression gate

``--check`` re-measures on the current host and fails (exit 1) when

- the captured op count differs from the committed baseline (an op crept
  into the inference loop — host-independent, always a real regression);
- ``batched_vs_single`` falls below the absolute 3.0x floor, or below
  baseline/1.25 (a >25% relative regression; ratios keep the gate
  host-independent);
- batched and single-row logits are not bit-identical.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "BENCH_serving.json"

IN_FEATURES = 8
N_CLASSES = 4
SEED = 7
BATCH_ROWS = 64
MICRO_BATCH = 64
SINGLE_CALLS = 200
BATCH_CALLS = 50
MIN_BATCHED_SPEEDUP = 3.0
WALL_TIME_TOLERANCE = 1.25


def _make_model(tmp_dir: str):
    import numpy as np

    from repro.circuits import PNCConfig, PrintedNeuralNetwork
    from repro.serving import export_artifact, load_artifact
    from repro.serving.engine import InferenceEngine

    net = PrintedNeuralNetwork(
        IN_FEATURES, N_CLASSES,
        PNCConfig(power_mode="analytic"),
        np.random.default_rng(SEED),
    )
    net.eval()
    model = load_artifact(export_artifact(net, Path(tmp_dir) / "bench.pnz"))
    # Fix the engine's captured shape explicitly so the op count is stable.
    model._engine = InferenceEngine(model.net, micro_batch=MICRO_BATCH)
    return model


def measure() -> dict:
    import numpy as np

    with tempfile.TemporaryDirectory() as tmp_dir:
        model = _make_model(tmp_dir)
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(BATCH_ROWS, IN_FEATURES))

        # Warm up: trigger graph capture outside the timed region.
        model.predict(batch)

        # Single-row path: one engine run per row, cycling through the batch.
        t0 = time.perf_counter()
        for i in range(SINGLE_CALLS):
            model.predict(batch[i % BATCH_ROWS : i % BATCH_ROWS + 1])
        single_s = time.perf_counter() - t0
        single_rows_per_s = SINGLE_CALLS / single_s

        t0 = time.perf_counter()
        for _ in range(BATCH_CALLS):
            batched = model.predict(batch)
        batched_s = time.perf_counter() - t0
        batched_rows_per_s = BATCH_CALLS * BATCH_ROWS / batched_s

        # Grouping invariance: batched logits == row-at-a-time logits, bitwise.
        per_row = np.concatenate(
            [model.predict(batch[i : i + 1]) for i in range(BATCH_ROWS)]
        )
        identical = bool(np.array_equal(batched, per_row))

        return {
            "benchmark": "serving",
            "command": "python -m repro.cli serve <artifact>",
            "net": {"in_features": IN_FEATURES, "n_classes": N_CLASSES, "seed": SEED},
            "micro_batch": MICRO_BATCH,
            "host": {
                "cpu_count": os.cpu_count() or 1,
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "single": {
                "calls": SINGLE_CALLS,
                "total_s": single_s,
                "rows_per_s": single_rows_per_s,
            },
            "batched": {
                "calls": BATCH_CALLS,
                "rows_per_call": BATCH_ROWS,
                "total_s": batched_s,
                "rows_per_s": batched_rows_per_s,
            },
            "batched_vs_single": batched_rows_per_s / single_rows_per_s,
            "engine_n_ops": model.engine.n_ops,
            "engine_captured": model.engine.is_captured,
            "logits_bit_identical": identical,
        }


def check(fresh: dict) -> int:
    """Gate a fresh measurement against the committed baseline; 0 = pass."""
    if not OUT.exists():
        print(f"FAIL: no baseline {OUT.name}; run without --check first", file=sys.stderr)
        return 1
    baseline = json.loads(OUT.read_text())
    failures: list[str] = []

    if not fresh["logits_bit_identical"]:
        failures.append("batched and single-row logits diverged (bit-identity broken)")
    if not fresh["engine_captured"]:
        failures.append("engine fell back to eager execution (capture failed)")

    was, now = baseline.get("engine_n_ops"), fresh.get("engine_n_ops")
    if was is not None and now != was:
        failures.append(f"op-count regression: engine_n_ops {was} -> {now}")

    ratio = fresh["batched_vs_single"]
    base_ratio = baseline.get("batched_vs_single")
    floor = MIN_BATCHED_SPEEDUP
    if base_ratio:
        floor = max(floor, base_ratio / WALL_TIME_TOLERANCE)
    if ratio < floor:
        failures.append(
            f"throughput regression: batched_vs_single {ratio:.2f}x < {floor:.2f}x "
            f"(baseline {base_ratio and f'{base_ratio:.2f}x'}, "
            f"absolute floor {MIN_BATCHED_SPEEDUP}x)"
        )
    else:
        print(f"batched_vs_single {ratio:.2f}x (floor {floor:.2f}x) — ok")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_serving.json instead of rewriting it")
    args = parser.parse_args()

    payload = measure()
    print(json.dumps(payload, indent=2, default=float))
    if args.check:
        return check(payload)
    OUT.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
