"""Extension — accuracy over device lifetime (aging-aware analysis).

Companion direction from the paper's group (Aging-Aware Training, ICCAD'22
[34]): printed EGTs drift (V_th up, K down) over their service life, and a
disposable classifier must clear its accuracy floor until end of life.
This benchmark trains one budgeted circuit and sweeps its age from fresh
print to end of service at three aging severities.

Asserted shape: the fresh circuit works; accuracy degrades (weakly)
monotonically with age; heavier aging never yields a longer functional
lifetime.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from benchmarks.conftest import benchmark_config, run_once
from repro.evaluation.experiments import dataset_split, make_network, unconstrained_max_power
from repro.evaluation.lifetime import run_lifetime_analysis
from repro.pdk.aging import AgingModel
from repro.pdk.params import ActivationKind
from repro.training import train_power_constrained

DATASET = "seeds"
KIND = ActivationKind.CLIPPED_RELU
SEVERITIES = {
    "mild": AgingModel(delta_vth=0.04, delta_k=0.08, spread=0.0),
    "nominal": AgingModel(delta_vth=0.08, delta_k=0.15, spread=0.0),
    "harsh": AgingModel(delta_vth=0.16, delta_k=0.30, spread=0.0),
}


def test_lifetime_degradation(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        net = make_network(DATASET, KIND, config.seed + 21, config)
        trained = train_power_constrained(
            net, split, power_budget=0.6 * max_power, mu=config.mu,
            mu_growth=config.mu_growth, warmup_epochs=config.warmup_epochs,
            anneal_epochs=config.anneal_epochs,
            settings=config.trainer_settings(),
        )
        net.eval()
        reports = {
            name: run_lifetime_analysis(
                net, split.x_test, split.y_test, aging,
                taus=np.linspace(0.0, 1.0, 5), accuracy_floor=0.55,
            )
            for name, aging in SEVERITIES.items()
        }
        return trained, reports

    trained, reports = run_once(benchmark, build)

    lines = [f"trained: acc {trained.test_accuracy * 100:.1f}% (fresh)"]
    for name, report in reports.items():
        trajectory = " ".join(f"{a * 100:5.1f}" for a in report.accuracy_mean)
        lines.append(f"{name:8s} acc% over tau [0..1]: {trajectory}  "
                     f"functional lifetime τ={report.functional_lifetime():.2f}")
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("extension_aging_output.txt").write_text(text)

    nominal = reports["nominal"]
    assert nominal.fresh_accuracy > 0.5
    # End of life never beats fresh by more than noise.
    for report in reports.values():
        assert report.end_of_life_accuracy <= report.fresh_accuracy + 0.05
    # Severity ordering: harsher aging → no longer functional lifetime.
    assert (
        reports["harsh"].functional_lifetime()
        <= reports["mild"].functional_lifetime() + 1e-9
    )
