"""Extension — latency and energy-per-decision of printed classifiers.

The paper budgets *power*; duty-cycled deployments budget *energy per
classification* ``E = P_static × t_settle``, with settling dominated by the
electrolyte gate capacitances printed EGTs carry.  This benchmark
characterizes the step response of each activation circuit and of a trained
budgeted classifier via backward-Euler transient simulation.

Asserted shape: every circuit settles within its simulated horizon;
millisecond-scale network latency (the known regime of printed
electronics); energy per decision in the nJ–µJ band.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from benchmarks.conftest import benchmark_config, run_once
from repro.evaluation.experiments import dataset_split, make_network, unconstrained_max_power
from repro.pdk.params import ActivationKind, design_space
from repro.pdk.timing import activation_step_response, network_step_response
from repro.training import train_power_constrained

DATASET = "iris"
KIND = ActivationKind.RELU


def test_latency_energy(benchmark):
    config = benchmark_config()
    split = dataset_split(DATASET, seed=config.seed)

    def build():
        responses = {}
        for kind in ActivationKind:
            q = design_space(kind).center()
            responses[kind.value] = activation_step_response(kind, q, 0.0, 0.6)
        max_power, _ = unconstrained_max_power(DATASET, KIND, config, split=split)
        net = make_network(DATASET, KIND, config.seed + 3, config)
        trained = train_power_constrained(
            net, split, power_budget=0.6 * max_power, mu=config.mu,
            mu_growth=config.mu_growth, warmup_epochs=config.warmup_epochs,
            anneal_epochs=config.anneal_epochs,
            settings=config.trainer_settings(),
        )
        report = network_step_response(net, split.x_test[0], n_steps=200)
        return responses, trained, report

    responses, trained, report = run_once(benchmark, build)

    lines = ["activation step responses (0 → 0.6 V input):"]
    for name, response in responses.items():
        lines.append(
            f"  {name:16s} settle {response.settling_time_s * 1e3:8.3f} ms, "
            f"output {response.initial_v:+.3f} → {response.final_v:+.3f} V"
        )
    lines.append(
        f"trained network ({KIND.value}, 60% budget): acc {trained.test_accuracy * 100:.1f}%"
    )
    lines.append("  " + report.summary())
    text = "\n".join(lines)
    print("\n" + text)
    Path(__file__).parent.joinpath("extension_latency_output.txt").write_text(text)

    # Every activation settles and actually responds to the step.
    for name, response in responses.items():
        assert response.settling_time_s > 0
        assert np.isfinite(response.final_v)

    # Printed-electronics regime: sub-second latency, well above digital ns.
    assert 1e-6 < report.settling_time_s < 1.0
    # Energy per decision in the physically sensible nJ–100 µJ band.
    assert 1e-10 < report.energy_per_decision_j < 1e-4
