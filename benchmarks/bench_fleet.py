"""Measure fleet vs serial training throughput; write ``BENCH_fleet.json``.

Trains a 64-seed iris sweep (analytic power mode, one fixed penalty α)
two ways in one process:

- **serial**: one :func:`~repro.training.trainer.train_model` call per
  seed — the pre-vectorization path, still the bit-identity reference;
- **fleet**: a single :func:`~repro.training.fleet.train_fleet` call —
  all 64 instances stacked behind a leading instance axis, one captured
  forward+backward+Adam schedule replayed per epoch.

Reported numbers:

- wall-clock for both paths and their ratio (``fleet_vs_serial``) — the
  number the PR's >=4x claim is about;
- **bit-identity**: every per-instance trace (loss, power, validation
  accuracy), checkpoint state and final metric from the fleet must equal
  the serial run exactly (the fleet's contract);
- capture health: the run must execute by captured-graph replay — the
  ``graph_capture_fallbacks`` counter must not move.

Modes:

    PYTHONPATH=src python benchmarks/bench_fleet.py           # measure + write
    PYTHONPATH=src python benchmarks/bench_fleet.py --check   # CI regression gate

``--check`` re-measures on the current host and fails (exit 1) when

- any fleet trace or final metric diverges from its serial twin;
- the fleet program abandoned capture (eager fallback);
- ``fleet_vs_serial`` falls below the absolute 3.0x floor.  As with the
  Monte-Carlo gate there is no baseline-relative clamp: the serial
  denominator is Python-overhead bound and swings with host load, so the
  committed >=4x headline would turn runner noise into false failures.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "BENCH_fleet.json"

DATASET = "iris"
N_INSTANCES = 64
ALPHA = 0.2
EPOCHS = 8
SPLIT_SEED = 0
MIN_FLEET_SPEEDUP = 3.0


def _make_problem():
    import numpy as np

    from repro.circuits import PNCConfig, PrintedNeuralNetwork
    from repro.datasets.registry import load_dataset
    from repro.datasets.splits import train_val_test_split
    from repro.training.trainer import TrainerSettings

    data = load_dataset(DATASET)
    split = train_val_test_split(data, seed=SPLIT_SEED)
    settings = TrainerSettings(epochs=EPOCHS, lr=0.05, patience=2, early_stop_stale=4)

    def make_net(seed: int):
        return PrintedNeuralNetwork(
            data.n_features, data.n_classes,
            PNCConfig(power_mode="analytic"),
            np.random.default_rng(seed),
        )

    return make_net, split, settings


def _results_identical(serial, fleet) -> bool:
    import numpy as np

    for a, b in zip(serial, fleet):
        if (
            a.loss_trace != b.loss_trace
            or a.power_trace != b.power_trace
            or a.val_accuracy_trace != b.val_accuracy_trace
            or a.multiplier_trace != b.multiplier_trace
        ):
            return False
        for name in ("train_accuracy", "val_accuracy", "test_accuracy", "power",
                     "best_epoch", "epochs_run", "feasible", "device_count"):
            if getattr(a, name) != getattr(b, name):
                return False
        if set(a.state) != set(b.state):
            return False
        if any(not np.array_equal(a.state[k], b.state[k]) for k in a.state):
            return False
    return True


def measure() -> dict:
    from repro.observability.metrics import get_registry
    from repro.training.fleet import train_fleet
    from repro.training.penalty import PenaltyObjective
    from repro.training.trainer import train_model

    make_net, split, settings = _make_problem()
    seeds = list(range(N_INSTANCES))

    t0 = time.perf_counter()
    serial = [
        train_model(make_net(seed), split, PenaltyObjective(alpha=ALPHA), settings=settings)
        for seed in seeds
    ]
    serial_s = time.perf_counter() - t0

    registry = get_registry()
    fallbacks_before = registry.get("graph_capture_fallbacks").value
    replays_before = registry.get("graph_replay_epochs").value
    nets = [make_net(seed) for seed in seeds]
    objectives = [PenaltyObjective(alpha=ALPHA) for _ in seeds]
    t0 = time.perf_counter()
    fleet = train_fleet(nets, split, objectives, settings=settings)
    fleet_s = time.perf_counter() - t0
    captured = (
        registry.get("graph_capture_fallbacks").value == fallbacks_before
        and registry.get("graph_replay_epochs").value > replays_before
    )

    return {
        "benchmark": "fleet",
        "command": "python -m repro.cli sweep <dataset> --vectorized",
        "dataset": DATASET,
        "n_instances": N_INSTANCES,
        "alpha": ALPHA,
        "epochs": EPOCHS,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "serial": {
            "total_s": serial_s,
            "instances_per_s": N_INSTANCES / serial_s,
        },
        "fleet": {
            "total_s": fleet_s,
            "instances_per_s": N_INSTANCES / fleet_s,
        },
        "fleet_vs_serial": serial_s / fleet_s,
        "program_captured": bool(captured),
        "results_bit_identical": _results_identical(serial, fleet),
    }


def check(fresh: dict) -> int:
    """Gate a fresh measurement against the committed baseline; 0 = pass."""
    if not OUT.exists():
        print(f"FAIL: no baseline {OUT.name}; run without --check first", file=sys.stderr)
        return 1
    baseline = json.loads(OUT.read_text())
    failures: list[str] = []

    if not fresh["results_bit_identical"]:
        failures.append("fleet and serial per-instance results diverged (bit-identity broken)")
    if not fresh["program_captured"]:
        failures.append("fleet program fell back to eager execution (capture failed)")

    ratio = fresh["fleet_vs_serial"]
    base_ratio = baseline.get("fleet_vs_serial")
    if ratio < MIN_FLEET_SPEEDUP:
        failures.append(
            f"throughput regression: fleet_vs_serial {ratio:.2f}x < "
            f"{MIN_FLEET_SPEEDUP}x floor "
            f"(committed baseline {base_ratio and f'{base_ratio:.2f}x'})"
        )
    else:
        print(
            f"fleet_vs_serial {ratio:.2f}x "
            f"(floor {MIN_FLEET_SPEEDUP}x, baseline "
            f"{base_ratio and f'{base_ratio:.2f}x'}) — ok"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed BENCH_fleet.json instead of rewriting it")
    args = parser.parse_args()

    payload = measure()
    print(json.dumps(payload, indent=2, default=float))
    if args.check:
        return check(payload)
    OUT.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
