"""E1/E6 — Table I: averaged Pow / Acc / #Dev per activation per budget.

Regenerates the paper's central table from the experiment grid and asserts
its *shape* claims:

- every cell's average power sits below its budget line (hard constraint),
- accuracy rises with the power budget (averaged over AFs),
- p-ReLU uses the fewest devices of all activation functions and p-tanh /
  p-sigmoid the most (the paper's device-count trade-off, E6).

Absolute numbers differ from the paper (synthetic datasets, simulated
technology); the printed table is recorded to ``table1_output.txt`` for
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.evaluation.reporting import aggregate_table1, render_table1
from repro.pdk.params import ActivationKind


def test_table1(experiment_grid, benchmark):
    def build():
        return aggregate_table1(experiment_grid)

    table = run_once(benchmark, build)
    text = render_table1(experiment_grid)
    print("\n" + text)
    Path(__file__).parent.joinpath("table1_output.txt").write_text(text)

    budgets = sorted({key[0] for key in table})
    kinds = sorted({key[1] for key in table}, key=lambda k: k.value)
    assert budgets == [0.2, 0.4, 0.6, 0.8]
    assert len(kinds) == 4

    # Shape claim 1: feasibility — per-record power below its own budget.
    feasible = [r for r in experiment_grid if r.feasible]
    feasibility_rate = len(feasible) / len(experiment_grid)
    print(f"feasibility rate: {feasibility_rate:.2f}")
    assert feasibility_rate >= 0.7

    # Shape claim 2: accuracy increases with budget (kind-averaged, with
    # slack for run-to-run noise at adjacent budgets).
    mean_accuracy = {
        budget: np.mean([table[(budget, kind)].accuracy_pct for kind in kinds])
        for budget in budgets
    }
    print("mean accuracy per budget:", {b: round(a, 1) for b, a in mean_accuracy.items()})
    assert mean_accuracy[0.8] > mean_accuracy[0.2]

    # Shape claim 3 (E6): device-count ordering at the top budget.
    device = {kind: table[(0.8, kind)].device_count for kind in kinds}
    print("devices at 80% budget:", {k.value: round(v) for k, v in device.items()})
    heavy = max(device[ActivationKind.TANH], device[ActivationKind.SIGMOID])
    assert device[ActivationKind.RELU] < heavy
    relu_saving = 1.0 - device[ActivationKind.RELU] / heavy
    print(f"p-ReLU device saving vs heaviest AF: {relu_saving * 100:.0f}% (paper: ~37%)")
    assert relu_saving > 0.15
